//! The daemon's observability hub: one [`Registry`], one
//! [`FlightRecorder`], and pre-resolved handles for every hot-path
//! metric, so instrumented code bumps atomics without ever touching the
//! registry lock.
//!
//! # Metric catalog
//!
//! Counters (monotonic since startup):
//!
//! | name | meaning |
//! |---|---|
//! | `requests_total` | requests handled (both protocol versions) |
//! | `audits_sia_total` | SIA audits executed (cache misses + push re-audits) |
//! | `audits_pia_total` | PIA audits executed |
//! | `push_audits_total` | subscription re-audits executed |
//! | `mutations_total` | ingest/retract batches applied |
//! | `sched_jobs_total` | jobs admitted to the worker pool |
//! | `outbox_shed_total` | pushed events shed by slow consumers |
//! | `outbox_shed_conn_<id>` | same, per live connection (removed at close) |
//! | `db_segment_saves_total` | dirty shard segments persisted |
//! | `fed_wire_bytes_total` | bytes put on the wire by federation parties |
//! | `fed_rounds_total` | federation ring messages sent |
//! | `fed_frame_retries_total` | ring frame sends retried after transient failures |
//! | `fed_redials_total` | ring successor re-dials after retries were exhausted |
//! | `fed_party_failures_total` | federation party runs that failed |
//! | `db_segments_quarantined_total` | torn/garbage segment files quarantined at load |
//! | `faults_injected_total` | chaos faults fired by the `--fault` harness |
//! | `loop_wakeups_total` | readiness-loop `epoll_wait` returns |
//!
//! Gauges (instantaneous; the derived ones are refreshed from their
//! authoritative sources — shard counters, cache stats, scheduler —
//! each time a snapshot is taken):
//!
//! | name | meaning |
//! |---|---|
//! | `sched_queue_depth` | jobs admitted, not yet picked up (live) |
//! | `sched_jobs_running` | jobs executing (derived) |
//! | `db_shard_writes` | effective write batches, all shards (derived) |
//! | `db_lock_waits` | contended shard-lock acquisitions (derived) |
//! | `cache_sia_hits` / `cache_sia_misses` | SIA result-cache outcomes (derived) |
//! | `cache_pia_hits` / `cache_pia_misses` | PIA result-cache outcomes (derived) |
//! | `cache_entries` | live cached results, both caches (derived) |
//! | `subscriptions` | live audit subscriptions (derived) |
//! | `active_conns` | open client connections (derived) |
//! | `pushed_events` | audit events produced for subscribers (derived) |
//! | `conn_registered` | connections registered with the readiness loop (live) |
//! | `write_queue_depth` | bytes queued across all connection write queues (live) |
//!
//! Histograms (all in microseconds):
//!
//! | name | what is timed |
//! |---|---|
//! | `envelope_decode_us` | v2 frame → envelope parse |
//! | `dispatch_us` | request dispatch to response produced |
//! | `write_us` | one write-queue drain pass onto a socket |
//! | `loop_ready_events` | fds ready per `epoll_wait` return (a batch-size distribution, not µs) |
//! | `sched_wait_us` | job queue wait |
//! | `audit_stage_graph_build_us` | fault-graph construction, per candidate |
//! | `audit_stage_rg_minimal_us` | minimal risk-group engine |
//! | `audit_stage_rg_sampling_us` | failure-sampling engine |
//! | `audit_stage_rg_bdd_us` | BDD compile + cut-set extraction |
//! | `audit_stage_ranking_us` | risk-group ranking |
//! | `audit_sia_us` / `audit_pia_us` | whole audit execution (misses) |
//! | `push_latency_us` | ingest invalidation → event frame enqueued |
//! | `ingest_us` | one ingest/retract batch through the write path |
//! | `fed_party_us` | one federation party run, all ring rounds |

use std::sync::{Arc, Mutex, PoisonError};

use indaas_core::StageObserver;
use indaas_obs::{Counter, FlightRecorder, Histo, Registry, SpanStore, Trace, TraceContext};

use crate::names;
use crate::proto::{MetricHisto, TraceEntry};
use crate::scheduler::SchedMetrics;

/// Flight-recorder capacity: enough to hold the recent past of a busy
/// daemon without unbounded memory (traces are small — stage name/µs
/// pairs and pins).
pub const TRACE_CAPACITY: usize = 256;

/// Span-store capacity. Spans are finer-grained than flight-recorder
/// traces (one request fans out to queue-wait, execution and per-stage
/// spans), so the ring is deeper — still bounded, oldest evicted first.
pub const SPAN_CAPACITY: usize = 4096;

/// Default number of traces a [`crate::proto::Request::Metrics`] with
/// `recent: null` returns.
pub const DEFAULT_RECENT_TRACES: usize = 32;

/// Registry + flight recorder + pre-resolved hot-path handles.
pub struct Telemetry {
    /// All named metrics; snapshot for exposition.
    pub registry: Registry,
    /// Recent audit/request traces.
    pub recorder: FlightRecorder,
    /// Recent distributed-tracing spans, addressable by trace id
    /// (served to `Request::Trace`).
    pub spans: SpanStore,
    pub requests_total: Arc<Counter>,
    pub envelope_decode_us: Arc<Histo>,
    pub dispatch_us: Arc<Histo>,
    pub write_us: Arc<Histo>,
    pub audits_sia_total: Arc<Counter>,
    pub audits_pia_total: Arc<Counter>,
    pub push_audits_total: Arc<Counter>,
    pub audit_sia_us: Arc<Histo>,
    pub audit_pia_us: Arc<Histo>,
    pub push_latency_us: Arc<Histo>,
    pub ingest_us: Arc<Histo>,
    pub mutations_total: Arc<Counter>,
    pub outbox_shed_total: Arc<Counter>,
    pub db_segment_saves_total: Arc<Counter>,
    pub fed_wire_bytes_total: Arc<Counter>,
    pub fed_rounds_total: Arc<Counter>,
    pub fed_frame_retries_total: Arc<Counter>,
    pub fed_redials_total: Arc<Counter>,
    pub fed_party_failures_total: Arc<Counter>,
    pub db_segments_quarantined_total: Arc<Counter>,
    pub faults_injected_total: Arc<Counter>,
    pub fed_party_us: Arc<Histo>,
    pub loop_wakeups_total: Arc<Counter>,
    pub loop_ready_events: Arc<Histo>,
    pub conn_registered: Arc<indaas_obs::Gauge>,
    pub write_queue_depth: Arc<indaas_obs::Gauge>,
}

impl Telemetry {
    /// Builds the registry with every static metric pre-registered (so
    /// expositions show the full catalog from the first scrape, zeros
    /// included) and a flight recorder flagging traces at or above
    /// `slow_audit_ms`.
    pub fn new(slow_audit_ms: u64) -> Self {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(TRACE_CAPACITY, slow_audit_ms.saturating_mul(1_000));
        // Pre-register the per-engine stage histograms too: a daemon
        // that has not yet audited still advertises the families.
        for stage in [
            "graph_build",
            "rg_minimal",
            "rg_sampling",
            "rg_bdd",
            "ranking",
        ] {
            registry.histo(&names::audit_stage_us(stage));
        }
        for gauge in [
            names::SCHED_QUEUE_DEPTH,
            names::SCHED_JOBS_RUNNING,
            names::DB_SHARD_WRITES,
            names::DB_LOCK_WAITS,
            names::CACHE_SIA_HITS,
            names::CACHE_SIA_MISSES,
            names::CACHE_PIA_HITS,
            names::CACHE_PIA_MISSES,
            names::CACHE_ENTRIES,
            names::SUBSCRIPTIONS,
            names::ACTIVE_CONNS,
            names::PUSHED_EVENTS,
        ] {
            registry.gauge(gauge);
        }
        registry.counter(names::SCHED_JOBS_TOTAL);
        registry.histo(names::SCHED_WAIT_US);
        Telemetry {
            requests_total: registry.counter(names::REQUESTS_TOTAL),
            envelope_decode_us: registry.histo(names::ENVELOPE_DECODE_US),
            dispatch_us: registry.histo(names::DISPATCH_US),
            write_us: registry.histo(names::WRITE_US),
            audits_sia_total: registry.counter(names::AUDITS_SIA_TOTAL),
            audits_pia_total: registry.counter(names::AUDITS_PIA_TOTAL),
            push_audits_total: registry.counter(names::PUSH_AUDITS_TOTAL),
            audit_sia_us: registry.histo(names::AUDIT_SIA_US),
            audit_pia_us: registry.histo(names::AUDIT_PIA_US),
            push_latency_us: registry.histo(names::PUSH_LATENCY_US),
            ingest_us: registry.histo(names::INGEST_US),
            mutations_total: registry.counter(names::MUTATIONS_TOTAL),
            outbox_shed_total: registry.counter(names::OUTBOX_SHED_TOTAL),
            db_segment_saves_total: registry.counter(names::DB_SEGMENT_SAVES_TOTAL),
            fed_wire_bytes_total: registry.counter(names::FED_WIRE_BYTES_TOTAL),
            fed_rounds_total: registry.counter(names::FED_ROUNDS_TOTAL),
            fed_frame_retries_total: registry.counter(names::FED_FRAME_RETRIES_TOTAL),
            fed_redials_total: registry.counter(names::FED_REDIALS_TOTAL),
            fed_party_failures_total: registry.counter(names::FED_PARTY_FAILURES_TOTAL),
            db_segments_quarantined_total: registry.counter(names::DB_SEGMENTS_QUARANTINED_TOTAL),
            faults_injected_total: registry.counter(names::FAULTS_INJECTED_TOTAL),
            fed_party_us: registry.histo(names::FED_PARTY_US),
            loop_wakeups_total: registry.counter(names::LOOP_WAKEUPS_TOTAL),
            loop_ready_events: registry.histo(names::LOOP_READY_EVENTS),
            conn_registered: registry.gauge(names::CONN_REGISTERED),
            write_queue_depth: registry.gauge(names::WRITE_QUEUE_DEPTH),
            registry,
            recorder,
            spans: SpanStore::new(SPAN_CAPACITY),
        }
    }

    /// Handles the worker pool keeps current.
    pub fn sched_metrics(&self) -> SchedMetrics {
        SchedMetrics {
            queue_depth: self.registry.gauge(names::SCHED_QUEUE_DEPTH),
            wait_us: self.registry.histo(names::SCHED_WAIT_US),
            jobs_total: self.registry.counter(names::SCHED_JOBS_TOTAL),
        }
    }

    /// The histogram an engine stage records into.
    pub fn stage_histo(&self, stage: &str) -> Arc<Histo> {
        self.registry.histo(&names::audit_stage_us(stage))
    }
}

/// A per-audit [`StageObserver`]: feeds each stage timing into the
/// registry's per-stage histogram *and* accumulates the `(stage, µs)`
/// list the audit's flight-recorder trace carries.
pub struct StageRecorder<'a> {
    telemetry: &'a Telemetry,
    stages: Mutex<Vec<(String, u64)>>,
    /// When the audit runs under a trace, each engine stage is also
    /// recorded as a span — a fresh child of this context per stage.
    trace: Option<TraceContext>,
}

impl<'a> StageRecorder<'a> {
    pub fn new(telemetry: &'a Telemetry) -> Self {
        StageRecorder::with_trace(telemetry, None)
    }

    /// A recorder that additionally emits one child span of `trace` per
    /// engine stage (no-op when `trace` is `None`).
    pub fn with_trace(telemetry: &'a Telemetry, trace: Option<TraceContext>) -> Self {
        StageRecorder {
            telemetry,
            stages: Mutex::new(Vec::new()),
            trace,
        }
    }

    /// The accumulated `(stage, µs)` pairs, in execution order.
    pub fn into_stages(self) -> Vec<(String, u64)> {
        self.stages
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl StageObserver for StageRecorder<'_> {
    fn stage(&self, stage: &'static str, elapsed_us: u64) {
        self.telemetry.stage_histo(stage).record(elapsed_us);
        if let Some(ctx) = self.trace {
            self.telemetry
                .spans
                .record(ctx.child(), stage, String::new(), elapsed_us);
        }
        self.stages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((stage.to_string(), elapsed_us));
    }
}

/// Renders registry histogram snapshots into their wire form, with the
/// quantile upper bounds precomputed server-side.
pub fn wire_histos(histos: &[(String, indaas_obs::HistoSnapshot)]) -> Vec<MetricHisto> {
    histos
        .iter()
        .map(|(name, snap)| MetricHisto {
            name: name.clone(),
            count: snap.count,
            sum_us: snap.sum,
            p50_us: snap.p50(),
            p90_us: snap.p90(),
            p99_us: snap.p99(),
            max_us: snap.max_bound(),
            buckets: snap.nonzero_buckets(),
        })
        .collect()
}

/// Renders flight-recorder traces into their wire form.
pub fn wire_traces(traces: Vec<Trace>) -> Vec<TraceEntry> {
    traces
        .into_iter()
        .map(|t| TraceEntry {
            seq: t.seq,
            kind: t.kind,
            detail: t.detail,
            cached: t.cached,
            outcome: t.outcome,
            total_us: t.total_us,
            slow: t.slow,
            stages: t.stages,
            pins: t.pins,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_recorder_feeds_histos_and_trace() {
        let t = Telemetry::new(0);
        let rec = StageRecorder::new(&t);
        rec.stage("graph_build", 120);
        rec.stage("rg_minimal", 4_000);
        assert_eq!(t.stage_histo("graph_build").snapshot().count, 1);
        assert_eq!(t.stage_histo("rg_minimal").snapshot().count, 1);
        let stages = rec.into_stages();
        assert_eq!(
            stages,
            vec![
                ("graph_build".to_string(), 120),
                ("rg_minimal".to_string(), 4_000)
            ]
        );
    }

    #[test]
    fn stage_recorder_emits_spans_under_a_trace() {
        let t = Telemetry::new(0);
        let exec = TraceContext::root().child();
        let rec = StageRecorder::with_trace(&t, Some(exec));
        rec.stage("graph_build", 7);
        rec.stage("ranking", 9);
        let spans = t.spans.spans_for(exec.trace_id);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.parent_span_id == exec.span_id));
        assert!(spans.iter().any(|s| s.name == "graph_build"));
        // Untraced recorders stay span-free.
        let silent = StageRecorder::new(&t);
        silent.stage("graph_build", 7);
        assert_eq!(t.spans.len(), 2);
    }

    #[test]
    fn slow_threshold_is_milliseconds_in() {
        let t = Telemetry::new(2);
        assert_eq!(t.recorder.slow_threshold_us(), 2_000);
        let t0 = Telemetry::new(0);
        assert_eq!(t0.recorder.slow_threshold_us(), 0);
    }

    #[test]
    fn wire_histo_carries_quantile_bounds() {
        let t = Telemetry::new(0);
        t.audit_sia_us.record(3);
        t.audit_sia_us.record(100);
        let snap = t.registry.snapshot();
        let wire = wire_histos(&snap.histos);
        let h = wire.iter().find(|h| h.name == "audit_sia_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_us, 103);
        assert!(h.p99_us >= 100);
        assert_eq!(h.buckets.len(), 2);
    }
}
