//! The daemon's wire protocol: versioned, multiplexed, binary-framed.
//!
//! **Protocol v2** opens with one line-mode handshake and then switches
//! to length-prefixed binary frames carrying correlated envelopes:
//!
//! ```text
//! → {"Hello": {"version": 2}}\n
//! ← {"Welcome": {"version": 2}}\n
//! --- connection switches to [u32 big-endian length][payload] frames ---
//! → frame: {"id": 1, "body": {"AuditSia": {"spec": {...}, "timeout_ms": 5000}}}
//! → frame: {"id": 2, "body": "Status"}
//! ← frame: {"id": 2, "body": {"Status": {...}}}        (responses may arrive out of order)
//! ← frame: {"id": 1, "body": {"Sia": {...}}}
//! → frame: {"id": 3, "body": {"Subscribe": {"spec": {...}, "engine": "sia"}}}
//! ← frame: {"id": 3, "body": {"Subscribed": {"subscription": 9}}}
//! ← frame: {"id": 0, "body": {"AuditEvent": {"subscription": 9, ...}}}   (server push)
//! ```
//!
//! A session admits many in-flight requests at once; every response
//! carries the envelope id of the request it answers, and envelope id
//! [`EVENT_ENVELOPE_ID`] (0) is reserved for server-initiated pushes —
//! [`Response::AuditEvent`] frames delivered whenever an ingest changes
//! a shard a subscription's spec reads.
//!
//! **Protocol v1** (line-delimited JSON, one lock-step request/response
//! pair at a time) remains fully supported through the downgrade path:
//! a connection whose first line is any request *other than* `Hello`
//! (or that offers `{"Hello": {"version": 1}}`) stays in line mode for
//! its whole life and is answered exactly as before:
//!
//! ```text
//! → "Ping"
//! ← "Pong"
//! → {"Ingest": {"records": "<src=\"S1\" dst=\"Internet\" route=\"tor1\"/>"}}
//! ← {"Ingested": {"changed": 1, "ignored": 0, "epoch": 1}}
//! ```
//!
//! The dependency store is sharded by host key with per-shard epochs
//! (`shard_epochs` in `Status`): an ingest bumps only the shards it
//! changes, and a cached `AuditSia` answer stays valid — `cached: true`
//! — across ingests that touch no shard its candidate hosts route to.
//! Each shard carries its own write lock, so concurrent `Ingest`
//! requests touching different hosts' shards land in parallel; `Status`
//! exposes the per-shard write counters (`shard_writes`), a
//! `lock_waits` contention gauge, and the push-path gauges
//! (`subscriptions`, `pushed_events`).
//!
//! **Observability** rides the same protocol: [`Request::Metrics`]
//! (either protocol version) answers [`Response::Metrics`] — every
//! registered counter and gauge as name-sorted `(name, value)` pairs,
//! every latency histogram as log₂ buckets with precomputed p50/p90/p99
//! upper bounds ([`MetricHisto`]), and the flight recorder's most
//! recent traces ([`TraceEntry`]: per-stage timings, cache disposition,
//! shard pins, outcome, and a `slow` flag judged against the daemon's
//! `--slow-audit-ms` threshold). Metric *names* are not protocol:
//! consumers must ignore unknown names, and the catalog grows without a
//! version bump. `indaas metrics --prom` renders the snapshot in
//! Prometheus text exposition format — `indaas_<name>` gauge lines for
//! counters/gauges, classic `_bucket{le="..."}`/`_sum`/`_count`
//! families for histograms (bucket `i` becomes `le="2^i - 1"` in
//! seconds), and `indaas_shard_writes{shard="N"}`-style labeled series
//! for the per-shard store counters taken from `Status`.
//!
//! **Distributed tracing** is an optional extension at both protocol
//! layers, designed so an untraced peer never notices it:
//!
//! * *Client envelopes* — a v2 [`Envelope`] may carry a `trace` field:
//!   the string `"<trace:032x>-<span:016x>-<parent:016x>"` naming the
//!   span the server should record for this request (the caller mints
//!   span ids, so trees stitch across processes without translation).
//!   The field is optional JSON: older clients omit it, older servers
//!   ignore it, and a malformed or all-zero value is treated as absent
//!   — never a protocol error. [`ResponseEnvelope`]s carry no context;
//!   v1 lines cannot carry one at all.
//! * *Federation rounds* — `FederateHello`/`FederateWelcome` carry an
//!   optional `trace: true` offer/acknowledgement; tracing is on only
//!   when both sides say so **and** the negotiated version is ≥ 2 (the
//!   v1 hex framing has no room for a context, so a v1 session always
//!   negotiates it off — without wire errors). On a traced session a
//!   binary round frame sets [`ROUND_FROM_TRACE_FLAG`] in its `from`
//!   word and appends a fixed 32-byte big-endian context
//!   (`trace:16 ‖ span:8 ‖ parent:8`, [`TRACE_CONTEXT_BYTES`]) *after*
//!   the payload; an all-zero extension decodes as absent. Untraced
//!   sessions emit byte-identical frames to pre-tracing builds.
//!
//! The spans a daemon records are served back by [`Request::Trace`] as
//! [`SpanEntry`] lists (`indaas trace <id>` stitches them across
//! daemons into one tree), and pushed [`Response::AuditEvent`]s name
//! the originating request's trace in `trace_id`.
//!
//! Responses to failed requests are `{"Error": {"message": "..."}}`; the
//! connection stays open (v1) or the error rides the offending
//! envelope's id (v2).

use indaas_core::AuditSpec;
use indaas_obs::{TraceContext, TRACE_CONTEXT_BYTES};
use indaas_pia::PiaRanking;
use indaas_sia::AuditReport;
use serde::{Deserialize, Serialize};

/// Client wire-protocol version this daemon speaks. A v2 session opens
/// with [`Request::Hello`]; the daemon answers [`Response::Welcome`]
/// with `min(offered, own)` and the connection switches to binary
/// frames when the negotiated version is ≥ 2.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest client protocol version still accepted. Version-1 peers never
/// send a `Hello` at all (or offer `1` explicitly) and keep the
/// line-mode lock-step protocol.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Envelope id reserved for server-initiated pushes
/// ([`Response::AuditEvent`]). Client-chosen request ids must be ≥ 1.
pub const EVENT_ENVELOPE_ID: u64 = 0;

/// Federation wire-protocol version this daemon speaks.
///
/// A peer handshake ([`Request::FederateHello`]) offers the dialer's
/// version; the listener answers with `min(offered, own)` in
/// [`Response::FederateWelcome`] and rejects anything below
/// [`MIN_FEDERATION_PROTOCOL_VERSION`]. At version ≥ 2 the peer session
/// switches to raw binary round frames ([`encode_round_frame`]) after
/// the handshake; version-1 peers keep hex-in-JSON lines.
pub const FEDERATION_PROTOCOL_VERSION: u32 = 2;

/// Oldest federation protocol version still accepted.
pub const MIN_FEDERATION_PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one decoded federation round payload. Hex encoding
/// doubles it on the wire, which must still fit a bounded request line
/// with JSON framing to spare (P-SOP ciphertexts are 128 bytes each, so
/// this admits 32k components per provider list).
pub const MAX_FEDERATE_PAYLOAD_BYTES: usize = 4 * 1024 * 1024;

/// Longest accepted peer node name in a federation handshake — peer
/// input, so bounded like everything else a peer controls.
pub const MAX_NODE_NAME_BYTES: usize = 256;

/// A client request: one per line in v1, one per envelope in v2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// First line of a protocol-v2 session: version negotiation. A
    /// connection that never sends one is a v1 line-mode session.
    Hello {
        /// Client protocol version the dialer speaks.
        version: u32,
    },
    /// Liveness probe.
    Ping,
    /// Stream a batch of Table-1 records into the versioned DepDB.
    Ingest {
        /// Table-1 record text (any number of lines).
        records: String,
    },
    /// Retract previously ingested records (exact match).
    Retract {
        /// Table-1 record text naming the records to remove.
        records: String,
    },
    /// Run (or serve from cache) a structural independence audit.
    AuditSia {
        /// The audit specification.
        spec: AuditSpec,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Run (or serve from cache) a private independence audit over
    /// explicit provider component sets.
    AuditPia {
        /// `(provider name, component set)` pairs.
        providers: Vec<(String, Vec<String>)>,
        /// Deployment width (how many providers per candidate).
        way: usize,
        /// MinHash signature size (`null` = exact P-SOP).
        minhash: Option<usize>,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Register a continuous audit: the daemon pins the subscription to
    /// the `(shard, epoch)` pairs the spec's hosts route to, pushes one
    /// initial [`Response::AuditEvent`], and re-runs the audit (through
    /// the normal scheduler and result cache) after every ingest that
    /// bumps a pinned shard, pushing the fresh result. Requires a
    /// protocol-v2 session.
    Subscribe {
        /// The audit specification to keep current.
        spec: AuditSpec,
        /// Audit engine to run — `"sia"` is the only engine with
        /// database-derived inputs, and therefore the only one that can
        /// go stale and be worth subscribing to.
        engine: String,
    },
    /// Cancel a subscription made on this connection.
    Unsubscribe {
        /// The id [`Response::Subscribed`] returned.
        subscription: u64,
    },
    /// Service counters and database state.
    Status,
    /// Full observability snapshot: every registered counter/gauge,
    /// every latency histogram (log₂ buckets plus precomputed
    /// quantile bounds), and the flight recorder's most recent traces.
    /// Answered with [`Response::Metrics`]. Works on v1 and v2
    /// sessions; `indaas metrics` and `indaas top` ride it.
    Metrics {
        /// How many recent traces to return (`null` = server default of
        /// 32; capped at the recorder's capacity).
        recent: Option<usize>,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Every span this daemon recorded for one distributed trace,
    /// answered with [`Response::Trace`]. The CLI (`indaas trace <id>`)
    /// asks several daemons and stitches the union into one tree —
    /// span-tree assembly is insertion-order independent, so the merge
    /// is a plain concatenation.
    Trace {
        /// The trace id as hex digits (up to 32; leading zeros may be
        /// dropped).
        id: String,
    },
    /// First line of a daemon-to-daemon peer session: protocol-version
    /// negotiation plus the dialer's node identity. After the
    /// [`Response::FederateWelcome`] answer the connection switches to
    /// *frame mode* and carries only [`Request::FederateData`] lines.
    FederateHello {
        /// Federation protocol version the dialer speaks.
        version: u32,
        /// The dialer's node name (its listen address by default) —
        /// used to reject self-connections.
        node: String,
        /// `Some(true)` when the dialer can stamp binary round frames
        /// with a trace-context extension. Tracing is active on the
        /// session only when [`Response::FederateWelcome`] echoes
        /// `Some(true)` *and* the negotiated version is ≥ 2 — v1 peers
        /// (hex lines, or software predating this field, which parses
        /// as `None`) negotiate it away.
        trace: Option<bool>,
    },
    /// One federation round frame, valid only inside a peer session.
    FederateData {
        /// Federation session id (shared by all parties of one audit).
        session: u64,
        /// The sender's ring-send ordinal within the session (0-based);
        /// the receiver's r-th receive must carry round `r`.
        round: u32,
        /// Ring index of the sending party.
        from: u32,
        /// Hex-encoded ciphertext-list payload (bounded by
        /// [`MAX_FEDERATE_PAYLOAD_BYTES`] once decoded).
        payload: String,
    },
    /// Coordinator instruction: run this daemon's party of a federated
    /// P-SOP audit. The daemon derives its private component set from its
    /// own dependency database, executes its ring rounds against the named
    /// successor, and answers [`Response::FederateDone`] with the
    /// fully-encrypted list destined for the auditing agent.
    FederateStart {
        /// Federation session id.
        session: u64,
        /// This daemon's ring index.
        index: u32,
        /// Number of provider parties on the ring.
        parties: u32,
        /// Address of the ring successor daemon.
        successor: String,
        /// P-SOP seed (all parties must agree).
        seed: u64,
        /// Multiset disambiguation flag (all parties must agree).
        multiset: bool,
        /// Per-round deadline in milliseconds (`null` = server default).
        round_timeout_ms: Option<u64>,
    },
}

/// The daemon's answer: one per request line in v1; in v2, one response
/// envelope per request envelope plus unsolicited
/// [`Response::AuditEvent`] pushes on envelope id 0.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`]: the negotiated protocol version,
    /// `min(offered, supported)`. At a negotiated version ≥ 2 both
    /// sides switch to binary frames immediately after this line.
    Welcome {
        /// Negotiated client protocol version.
        version: u32,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Ingest`] / [`Request::Retract`].
    Ingested {
        /// Records that changed the database.
        changed: usize,
        /// Duplicate/absent records ignored.
        ignored: usize,
        /// Database epoch after the batch.
        epoch: u64,
    },
    /// Answer to [`Request::AuditSia`].
    Sia {
        /// Epoch the audit ran against.
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds
        /// (compute time on a miss, lookup time on a hit).
        elapsed_us: u64,
        /// The audit report.
        report: AuditReport,
    },
    /// Answer to [`Request::AuditPia`].
    Pia {
        /// Epoch the audit ran against (PIA provider sets are
        /// request-supplied, but the epoch still stamps the answer).
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds.
        elapsed_us: u64,
        /// Candidate deployments, most independent first.
        rankings: Vec<PiaRanking>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Current global database epoch (one bump per effective batch).
        epoch: u64,
        /// Distinct dependency records stored (all shards).
        records: usize,
        /// Hosts with at least one record.
        hosts: usize,
        /// Per-shard epochs of the host-sharded store, indexed by shard.
        /// A shard's epoch moves exactly when an ingest/retract changes
        /// *that shard's* records — cached audits pinned to other shards
        /// survive the batch.
        shard_epochs: Vec<u64>,
        /// Distinct records per shard, indexed like `shard_epochs`.
        shard_records: Vec<usize>,
        /// Effective write batches applied per shard since startup,
        /// indexed like `shard_epochs` (a batch spanning K shards
        /// counts once on each). Together with `lock_waits` this makes
        /// the store's write parallelism observable over the wire.
        shard_writes: Vec<u64>,
        /// Times a writer found a shard lock held by another writer and
        /// had to wait, summed over all shards. Stays near zero while
        /// concurrent ingests touch disjoint shards — a growing value
        /// means hot-shard contention (consider more shards).
        lock_waits: u64,
        /// Audit jobs currently queued (admitted, not yet running).
        jobs_queued: usize,
        /// Audit jobs currently executing on workers.
        jobs_running: usize,
        /// Live audit-result cache entries.
        cache_entries: usize,
        /// Cache hits since startup.
        cache_hits: u64,
        /// Cache misses since startup.
        cache_misses: u64,
        /// `cache_hits / (cache_hits + cache_misses)`, 0 before the
        /// first lookup.
        hit_ratio: f64,
        /// Live audit subscriptions across all connections.
        subscriptions: usize,
        /// [`Response::AuditEvent`] frames produced for subscribers
        /// since startup (shed events — a slow consumer's overwritten
        /// backlog — still count: they were produced).
        pushed_events: u64,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
        /// Whole seconds since the daemon started. Appended after
        /// `uptime_ms` (kept for byte-compatibility) because every
        /// human consumer rounded it anyway.
        uptime_secs: u64,
        /// SIA audits actually executed (cache misses and subscription
        /// re-audits; cache hits excluded) since startup.
        sia_audits: u64,
        /// PIA audits actually executed since startup.
        pia_audits: u64,
        /// [`Response::AuditEvent`] frames shed by slow consumers'
        /// outboxes since startup — pushes that were produced and
        /// counted in `pushed_events` but never reached a subscriber.
        /// Nonzero means some subscriber is not keeping up.
        dropped_events: u64,
    },
    /// Answer to [`Request::Metrics`]: the full observability snapshot.
    ///
    /// Counters and gauges are name-sorted `(name, value)` pairs;
    /// histograms and traces are structured (see [`MetricHisto`] and
    /// [`TraceEntry`]). Consumers must ignore names they do not know —
    /// the metric catalog grows without a protocol bump.
    ///
    /// The chaos-hardening counters ride that rule: `faults_injected_total`
    /// (armed `--fault` points that actually fired),
    /// `fed_frame_retries_total` / `fed_redials_total` (federation frames
    /// re-sent and ring successors re-dialed after transient faults),
    /// `fed_party_failures_total` (parties a coordinated round lost,
    /// reachable or not), and `db_segments_quarantined_total` (torn or
    /// corrupt persistence segments renamed `*.quarantine` at load so the
    /// survivors could be served).
    Metrics {
        /// Whole seconds since the daemon started.
        uptime_secs: u64,
        /// Monotonic counters, name-sorted.
        counters: Vec<(String, u64)>,
        /// Instantaneous levels, name-sorted. Derived values (cache
        /// hits, per-shard totals, queue occupancy) are refreshed at
        /// snapshot time.
        gauges: Vec<(String, u64)>,
        /// Latency histograms, name-sorted.
        histos: Vec<MetricHisto>,
        /// Most recent flight-recorder traces, newest first.
        traces: Vec<TraceEntry>,
        /// The active `--slow-audit-ms` threshold in microseconds —
        /// what `slow` on a trace was judged against.
        slow_threshold_us: u64,
    },
    /// Answer to [`Request::Subscribe`]: the subscription is live and
    /// its first [`Response::AuditEvent`] is on its way.
    Subscribed {
        /// Id to pass to [`Request::Unsubscribe`]; pushed events carry
        /// it so one connection can hold many subscriptions.
        subscription: u64,
    },
    /// Answer to [`Request::Unsubscribe`].
    Unsubscribed {
        /// Echo of the cancelled subscription id.
        subscription: u64,
    },
    /// Server push on envelope id [`EVENT_ENVELOPE_ID`]: a fresh audit
    /// result for one subscription — the initial result right after
    /// [`Request::Subscribe`], then one per ingest that bumped a shard
    /// the spec reads.
    AuditEvent {
        /// The subscription this event belongs to.
        subscription: u64,
        /// Global database epoch the audit ran against.
        epoch: u64,
        /// True if served from the audit-result cache (another client
        /// or subscription already paid for the recompute).
        cached: bool,
        /// Server-side time to produce the result, in microseconds.
        elapsed_us: u64,
        /// The fresh audit report.
        report: AuditReport,
        /// Hex id of the distributed trace this push belongs to — the
        /// originating ingest's trace (or the `Subscribe` request's for
        /// the initial event), joinable via `indaas trace <id>`. Absent
        /// when the trigger carried no trace context.
        trace_id: Option<String>,
    },
    /// Answer to [`Request::Shutdown`] — and, on v2 sessions, also the
    /// server's *farewell push* (envelope id 0) broadcast to every
    /// subscribed connection before the listener drains: a subscriber
    /// that sees this push must treat the following EOF as an orderly
    /// goodbye (`SubscriptionEnd::CleanShutdown`), not a connection
    /// loss worth reconnect-hammering.
    ShuttingDown,
    /// Answer to [`Request::FederateHello`]: the negotiated protocol
    /// version and the listener's node identity.
    FederateWelcome {
        /// Negotiated version: `min(offered, supported)`.
        version: u32,
        /// The listener's node name.
        node: String,
        /// `Some(true)` iff the dialer offered tracing, the listener
        /// supports it, and the negotiated version is ≥ 2; any other
        /// answer (including the field being absent — pre-tracing
        /// software) means round frames carry no trace extension.
        trace: Option<bool>,
    },
    /// Answer to [`Request::FederateStart`], sent once this daemon's
    /// party finished all its ring rounds.
    FederateDone {
        /// Echo of the session id.
        session: u64,
        /// Hex-encoded fully-encrypted list for the auditing agent.
        payload: String,
        /// Protocol payload bytes this party sent (ring + agent hop).
        sent_bytes: u64,
        /// Protocol payload bytes this party received.
        recv_bytes: u64,
        /// Protocol messages this party sent (ring + agent hop).
        sent_msgs: u64,
        /// Protocol messages this party received.
        recv_msgs: u64,
        /// Bytes this party actually put on the wire dialing its ring
        /// successor — framing included — as opposed to `sent_bytes`,
        /// which counts protocol payload only. Binary framing (peer
        /// protocol ≥ 2) roughly halves this versus hex-in-JSON lines.
        ///
        /// Under transient successor faults a party retries each frame
        /// (bounded, exponential backoff) and may re-dial its successor
        /// once; bytes burned on failed attempts are *included* here, so
        /// a retried run legitimately reports more wire bytes than a
        /// clean one. The retry/redial counts surface as the daemon's
        /// `fed_frame_retries_total` / `fed_redials_total` counters in
        /// [`Response::Metrics`], not on this answer — the wire shape is
        /// unchanged from protocol v2.
        ///
        /// A party that cannot finish its rounds answers
        /// [`Response::Error`] instead; the coordinator classifies that
        /// as a *reachable* failure (the daemon is alive, the round
        /// died) versus an unreachable one (dial/transport death), and —
        /// when unreachable parties are a strict minority — folds both
        /// into a degraded `FederatedOutcome`: no overlap result, but
        /// every failed party named with its classification. Each
        /// coordinating daemon also counts those failures in
        /// `fed_party_failures_total`.
        wire_sent_bytes: u64,
    },
    /// Answer to [`Request::Trace`]: this daemon's spans of the trace.
    Trace {
        /// The answering daemon's node identity (its listen address);
        /// also stamped on every span entry.
        node: String,
        /// Spans recorded here for the requested trace id, oldest
        /// first. Empty when the daemon saw nothing of the trace (or
        /// its span ring already evicted it).
        spans: Vec<SpanEntry>,
    },
    /// Any failure: parse errors, audit errors, deadline overruns,
    /// queue overload.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
        }
    }
}

/// One latency histogram in a [`Response::Metrics`] snapshot.
///
/// Buckets are log₂: bucket `i ≥ 1` counts values (microseconds) in
/// `[2^(i-1), 2^i)`, bucket 0 counts exact zeros; only occupied buckets
/// are sent. The quantile fields are *bucket upper bounds* — for a true
/// quantile value `v` the reported bound `b` satisfies `v <= b < 2v + 1`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricHisto {
    /// Metric name.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (µs) — `sum / count` is the mean.
    pub sum_us: u64,
    /// Median upper bound, µs.
    pub p50_us: u64,
    /// 90th-percentile upper bound, µs.
    pub p90_us: u64,
    /// 99th-percentile upper bound, µs.
    pub p99_us: u64,
    /// Upper bound of the highest occupied bucket, µs.
    pub max_us: u64,
    /// Occupied `(bucket index, count)` pairs, index-ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// One flight-recorder trace in a [`Response::Metrics`] snapshot: a
/// recent audit/request execution with its per-stage timings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Monotonic sequence number (gaps mean the ring evicted entries).
    pub seq: u64,
    /// What ran: `"sia"`, `"pia"`, or `"push"` (subscription re-audit).
    pub kind: String,
    /// Free-form context — candidate deployment names, subscription id.
    pub detail: String,
    /// Served from the audit cache (then `stages` is empty).
    pub cached: bool,
    /// `"ok"`, `"cancelled"`, or an error rendering.
    pub outcome: String,
    /// End-to-end microseconds.
    pub total_us: u64,
    /// At or above the `--slow-audit-ms` threshold when recorded.
    pub slow: bool,
    /// Per-stage `(name, µs)` pairs in execution order — one entry per
    /// candidate deployment per engine stage.
    pub stages: Vec<(String, u64)>,
    /// `(shard, epoch)` pins the execution read against.
    pub pins: Vec<(u32, u64)>,
}

/// One span of a distributed trace in a [`Response::Trace`] answer —
/// the wire twin of `indaas_obs::SpanRecord`, with the trace id in hex
/// (JSON has no 128-bit integers) and the recording daemon stamped on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanEntry {
    /// Trace id, 32 hex digits.
    pub trace: String,
    pub span_id: u64,
    /// The span this one nests under; 0 for a trace root.
    pub parent_span_id: u64,
    /// What ran: `request:AuditSia`, `queue_wait`, `fed_party`, an
    /// engine stage name, …
    pub name: String,
    /// Free-form qualifier; may be empty.
    pub detail: String,
    /// The daemon that recorded the span.
    pub node: String,
    /// Wall-clock start, µs since the UNIX epoch (sibling ordering).
    pub start_us: u64,
    pub elapsed_us: u64,
}

/// A correlated protocol-v2 request: the client picks `id` (≥ 1) and
/// the matching [`ResponseEnvelope`] echoes it, so one session can keep
/// many requests in flight and match answers out of order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Envelope {
    /// Client-chosen correlation id, unique among this connection's
    /// in-flight requests. Id 0 is reserved ([`EVENT_ENVELOPE_ID`]).
    pub id: u64,
    /// The request itself.
    pub body: Request,
    /// Optional trace-context header
    /// (`TraceContext::encode_header`: `<32 hex>-<16 hex>-<16 hex>`,
    /// naming the span the server should record for this dispatch).
    /// Envelopes from pre-tracing clients parse as `None`; garbage is
    /// treated as absent, never an error.
    pub trace: Option<String>,
}

/// A correlated protocol-v2 response: `id` echoes the request envelope,
/// or is [`EVENT_ENVELOPE_ID`] for a server push.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The request envelope this answers, or 0 for a push.
    pub id: u64,
    /// The response itself.
    pub body: Response,
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame is in the buffer.
    Frame,
    /// Clean end of stream before any byte of a new frame.
    Eof,
    /// The announced length exceeds the limit; nothing was read past
    /// the prefix, so the stream cannot be resynchronized and should be
    /// dropped.
    Oversized,
}

/// Writes one length-prefixed binary frame: a `u32` big-endian payload
/// length followed by the payload. The caller flushes.
///
/// # Errors
///
/// Rejects payloads longer than `u32::MAX` (nothing in the protocol
/// comes close); propagates transport errors.
pub fn write_frame(writer: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 length",
        )
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)
}

/// Reads one length-prefixed binary frame into `buf`, bounding the
/// accepted length by `limit`.
///
/// The buffer grows with bytes *actually received*, chunk by chunk —
/// a lying length prefix on a stalling peer can never balloon memory
/// past what the peer really sent (plus one chunk), and an announced
/// length beyond `limit` is rejected before any allocation at all.
///
/// # Errors
///
/// A stream that ends inside the length prefix or inside the announced
/// payload is a truncated frame and surfaces as
/// [`std::io::ErrorKind::UnexpectedEof`]; other transport errors
/// propagate unchanged.
pub fn read_frame(
    reader: &mut impl std::io::Read,
    buf: &mut Vec<u8>,
    limit: u64,
) -> std::io::Result<FrameRead> {
    buf.clear();
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u64::from(u32::from_be_bytes(header));
    if len > limit {
        return Ok(FrameRead::Oversized);
    }
    const CHUNK: usize = 64 * 1024;
    let mut remaining = len as usize;
    while remaining > 0 {
        let step = remaining.min(CHUNK);
        let start = buf.len();
        buf.resize(start + step, 0);
        reader.read_exact(&mut buf[start..])?;
        remaining -= step;
    }
    Ok(FrameRead::Frame)
}

/// Bytes of the binary round-frame header: session (8) ‖ round (4) ‖
/// from (4), all big-endian, followed by the raw ciphertext payload.
pub const ROUND_FRAME_HEADER_BYTES: usize = 16;

/// Encodes one federation round frame for a peer session at protocol
/// version ≥ 2: the fixed binary header followed by the payload bytes
/// verbatim — no hex, no JSON. Ship it with [`write_frame`].
pub fn encode_round_frame(session: u64, round: u32, from: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ROUND_FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&session.to_be_bytes());
    out.extend_from_slice(&round.to_be_bytes());
    out.extend_from_slice(&from.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one binary round frame, borrowing the payload.
///
/// # Errors
///
/// A human-readable message for frames shorter than the header or with
/// a payload beyond [`MAX_FEDERATE_PAYLOAD_BYTES`].
pub fn decode_round_frame(frame: &[u8]) -> Result<(u64, u32, u32, &[u8]), String> {
    if frame.len() < ROUND_FRAME_HEADER_BYTES {
        return Err(format!(
            "round frame of {} bytes is shorter than the {ROUND_FRAME_HEADER_BYTES}-byte header",
            frame.len()
        ));
    }
    let (header, payload) = frame.split_at(ROUND_FRAME_HEADER_BYTES);
    if payload.len() > MAX_FEDERATE_PAYLOAD_BYTES {
        return Err(format!(
            "round-frame payload exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes"
        ));
    }
    let session = u64::from_be_bytes(header[0..8].try_into().expect("8-byte slice")); // lint:allow(panic_path) -- header[0..8] is a fixed 8-byte range
    let round = u32::from_be_bytes(header[8..12].try_into().expect("4-byte slice")); // lint:allow(panic_path) -- header[8..12] is a fixed 4-byte range
    let from = u32::from_be_bytes(header[12..16].try_into().expect("4-byte slice")); // lint:allow(panic_path) -- header[12..16] is a fixed 4-byte range
    Ok((session, round, from, payload))
}

/// Flag bit in the round-frame `from` field marking a trace-context
/// extension appended after the payload. Ring indices are bounded by
/// `MAX_PARTIES` (64), so the top bit is always free.
pub const ROUND_FROM_TRACE_FLAG: u32 = 1 << 31;

/// [`encode_round_frame`] with an optional trace-context extension:
/// when `trace` is set, the context's 32-byte binary form is appended
/// after the payload and [`ROUND_FROM_TRACE_FLAG`] is set in `from`.
/// Senders only stamp the extension on sessions where the
/// `FederateHello`/`FederateWelcome` handshake negotiated tracing on.
pub fn encode_traced_round_frame(
    session: u64,
    round: u32,
    from: u32,
    payload: &[u8],
    trace: Option<&TraceContext>,
) -> Vec<u8> {
    match trace {
        None => encode_round_frame(session, round, from, payload),
        Some(ctx) => {
            let mut out = encode_round_frame(session, round, from | ROUND_FROM_TRACE_FLAG, payload);
            out.extend_from_slice(&ctx.to_bytes());
            out
        }
    }
}

/// A decoded traced round frame: `(session, round, from, payload,
/// trace)`, with the [`ROUND_FROM_TRACE_FLAG`] bit already stripped
/// from `from`.
pub type TracedRoundFrame<'a> = (u64, u32, u32, &'a [u8], Option<TraceContext>);

/// Decodes a binary round frame that may carry the trace extension.
///
/// The flag bit in `from` says whether the last 32 bytes are a trace
/// context; an all-zero (or otherwise invalid) extension decodes as
/// "no context". Absent or garbage context never panics — the worst a
/// hostile peer gets is an error string.
///
/// # Errors
///
/// A human-readable message for frames shorter than their announced
/// layout or with an oversized payload.
pub fn decode_traced_round_frame(frame: &[u8]) -> Result<TracedRoundFrame<'_>, String> {
    if frame.len() < ROUND_FRAME_HEADER_BYTES {
        return Err(format!(
            "round frame of {} bytes is shorter than the {ROUND_FRAME_HEADER_BYTES}-byte header",
            frame.len()
        ));
    }
    let (header, rest) = frame.split_at(ROUND_FRAME_HEADER_BYTES);
    let session = u64::from_be_bytes(header[0..8].try_into().expect("8-byte slice")); // lint:allow(panic_path) -- header[0..8] is a fixed 8-byte range
    let round = u32::from_be_bytes(header[8..12].try_into().expect("4-byte slice")); // lint:allow(panic_path) -- header[8..12] is a fixed 4-byte range
    let raw_from = u32::from_be_bytes(header[12..16].try_into().expect("4-byte slice")); // lint:allow(panic_path) -- header[12..16] is a fixed 4-byte range
    let (payload, trace) = if raw_from & ROUND_FROM_TRACE_FLAG == 0 {
        (rest, None)
    } else {
        if rest.len() < TRACE_CONTEXT_BYTES {
            return Err(format!(
                "round frame flags a trace extension but carries only {} payload bytes",
                rest.len()
            ));
        }
        let (payload, ext) = rest.split_at(rest.len() - TRACE_CONTEXT_BYTES);
        (payload, TraceContext::from_bytes(ext))
    };
    if payload.len() > MAX_FEDERATE_PAYLOAD_BYTES {
        return Err(format!(
            "round-frame payload exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes"
        ));
    }
    Ok((
        session,
        round,
        raw_from & !ROUND_FROM_TRACE_FLAG,
        payload,
        trace,
    ))
}

/// Encodes a protocol value as one wire line (no trailing newline).
pub fn encode_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("protocol types always serialize") // lint:allow(panic_path) -- protocol types are plain data; JSON serialization cannot fail
}

/// Decodes one wire line.
///
/// # Errors
///
/// Returns the underlying JSON error for malformed input.
pub fn decode_line<T: serde::Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line)
}

/// Hex-encodes a federation payload for the wire (lowercase, no prefix).
pub fn encode_payload(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[usize::from(b >> 4)]); // lint:allow(panic_path) -- b >> 4 is at most 15 and DIGITS has 16 entries
        out.push(DIGITS[usize::from(b & 0x0f)]); // lint:allow(panic_path) -- b & 0x0f is at most 15 and DIGITS has 16 entries
    }
    String::from_utf8(out).expect("hex digits are ASCII") // lint:allow(panic_path) -- out holds only DIGITS bytes, which are ASCII
}

/// Decodes a hex federation payload, enforcing
/// [`MAX_FEDERATE_PAYLOAD_BYTES`].
///
/// # Errors
///
/// Returns a human-readable message for odd-length input, non-hex
/// characters, or an oversized payload.
pub fn decode_payload(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_string());
    }
    if hex.len() / 2 > MAX_FEDERATE_PAYLOAD_BYTES {
        return Err(format!(
            "payload exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes"
        ));
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("invalid hex character {:?}", c as char)),
        }
    };
    let raw = hex.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks(2) {
        out.push(digit(pair[0])? << 4 | digit(pair[1])?); // lint:allow(panic_path) -- chunks_exact(2) yields exactly two bytes per pair
    }
    Ok(out)
}

/// Outcome of [`read_bounded_line`].
pub enum LineRead {
    /// A complete line (terminator stripped is up to the caller).
    Line,
    /// Clean end of stream before any byte of a new line.
    Eof,
    /// The peer sent `limit` bytes with no newline; the stream can no
    /// longer be resynchronized and should be dropped.
    Oversized,
}

/// Reads one `\n`-terminated line into `buf` without letting the
/// buffer outgrow `limit` bytes — the shared guard both daemon and
/// client use against unbounded peer input.
///
/// # Errors
///
/// Propagates transport errors (including invalid UTF-8) from the
/// underlying reader.
pub fn read_bounded_line(
    reader: &mut impl std::io::BufRead,
    buf: &mut String,
    limit: u64,
) -> std::io::Result<LineRead> {
    use std::io::BufRead as _;
    buf.clear();
    let n = std::io::Read::take(reader, limit).read_line(buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.len() as u64 >= limit && !buf.ends_with('\n') {
        return Ok(LineRead::Oversized);
    }
    Ok(LineRead::Line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_core::CandidateDeployment;

    #[test]
    fn unit_variants_are_bare_strings() {
        assert_eq!(encode_line(&Request::Ping), "\"Ping\"");
        let back: Request = decode_line("\"Ping\"").unwrap();
        assert!(matches!(back, Request::Ping));
    }

    #[test]
    fn audit_request_roundtrips() {
        let req = Request::AuditSia {
            spec: AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
                "pair",
                ["S1", "S2"],
            )]),
            timeout_ms: Some(2500),
        };
        let line = encode_line(&req);
        assert!(!line.contains('\n'), "wire format is single-line");
        let back: Request = decode_line(&line).unwrap();
        match back {
            Request::AuditSia { spec, timeout_ms } => {
                assert_eq!(spec.candidates[0].name, "pair");
                assert_eq!(timeout_ms, Some(2500));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn omitted_option_fields_parse_as_none() {
        let back: Request =
            decode_line(r#"{"AuditPia": {"providers": [["A", ["x"]], ["B", ["y"]]], "way": 2}}"#)
                .unwrap();
        match back {
            Request::AuditPia {
                providers,
                way,
                minhash,
                timeout_ms,
            } => {
                assert_eq!(providers.len(), 2);
                assert_eq!(way, 2);
                assert_eq!(minhash, None);
                assert_eq!(timeout_ms, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(decode_line::<Request>("not json").is_err());
        assert!(decode_line::<Request>("\"NoSuchVariant\"").is_err());
        assert!(decode_line::<Request>(r#"{"AuditSia": {}}"#).is_err());
    }

    #[test]
    fn error_response_roundtrips() {
        let line = encode_line(&Response::error("boom"));
        let back: Response = decode_line(&line).unwrap();
        assert!(matches!(back, Response::Error { message } if message == "boom"));
    }

    #[test]
    fn federate_messages_roundtrip() {
        let hello = Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION,
            node: "127.0.0.1:4914".into(),
            trace: Some(true),
        };
        let back: Request = decode_line(&encode_line(&hello)).unwrap();
        assert!(matches!(
            back,
            Request::FederateHello { version, node, trace: Some(true) }
                if version == FEDERATION_PROTOCOL_VERSION && node == "127.0.0.1:4914"
        ));
        // A pre-tracing hello (no `trace` field) parses as None.
        let legacy: Request =
            decode_line(r#"{"FederateHello":{"version":1,"node":"127.0.0.1:1"}}"#).unwrap();
        assert!(matches!(legacy, Request::FederateHello { trace: None, .. }));

        let frame = Request::FederateData {
            session: 42,
            round: 1,
            from: 2,
            payload: encode_payload(&[0xde, 0xad, 0xbe, 0xef]),
        };
        match decode_line::<Request>(&encode_line(&frame)).unwrap() {
            Request::FederateData {
                session,
                round,
                from,
                payload,
            } => {
                assert_eq!((session, round, from), (42, 1, 2));
                assert_eq!(
                    decode_payload(&payload).unwrap(),
                    vec![0xde, 0xad, 0xbe, 0xef]
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let done = Response::FederateDone {
            session: 42,
            payload: encode_payload(&[1, 2, 3]),
            sent_bytes: 384,
            recv_bytes: 256,
            sent_msgs: 3,
            recv_msgs: 2,
            wire_sent_bytes: 812,
        };
        assert!(matches!(
            decode_line::<Response>(&encode_line(&done)).unwrap(),
            Response::FederateDone {
                sent_bytes: 384,
                ..
            }
        ));
    }

    #[test]
    fn payload_hex_is_validated_and_bounded() {
        assert_eq!(decode_payload("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode_payload("00ff10").unwrap(), vec![0, 255, 16]);
        assert!(decode_payload("abc").unwrap_err().contains("odd length"));
        assert!(decode_payload("zz").unwrap_err().contains("invalid hex"));
        let oversized = "00".repeat(MAX_FEDERATE_PAYLOAD_BYTES + 1);
        assert!(decode_payload(&oversized).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn payload_roundtrip_is_identity() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_payload(&encode_payload(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn hello_and_subscription_messages_roundtrip() {
        let back: Request = decode_line(&encode_line(&Request::Hello {
            version: PROTOCOL_VERSION,
        }))
        .unwrap();
        assert!(matches!(back, Request::Hello { version } if version == PROTOCOL_VERSION));

        let sub = Request::Subscribe {
            spec: AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
                "pair",
                ["S1", "S2"],
            )]),
            engine: "sia".into(),
        };
        match decode_line::<Request>(&encode_line(&sub)).unwrap() {
            Request::Subscribe { spec, engine } => {
                assert_eq!(spec.candidates[0].name, "pair");
                assert_eq!(engine, "sia");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let back: Response =
            decode_line(&encode_line(&Response::Subscribed { subscription: 9 })).unwrap();
        assert!(matches!(back, Response::Subscribed { subscription: 9 }));
        let back: Response =
            decode_line(&encode_line(&Response::Unsubscribed { subscription: 9 })).unwrap();
        assert!(matches!(back, Response::Unsubscribed { subscription: 9 }));
    }

    #[test]
    fn envelopes_preserve_correlation_ids() {
        let env = Envelope {
            id: u64::MAX - 1, // u64 fidelity must survive the JSON layer
            body: Request::Ping,
            trace: None,
        };
        let back: Envelope = decode_line(&encode_line(&env)).unwrap();
        assert_eq!(back.id, u64::MAX - 1);
        assert!(matches!(back.body, Request::Ping));
        assert_eq!(back.trace, None);

        // A traced envelope carries the header string through; an
        // envelope from a pre-tracing client (no field at all) parses.
        let ctx = TraceContext::root();
        let env = Envelope {
            id: 5,
            body: Request::Ping,
            trace: Some(ctx.encode_header()),
        };
        let back: Envelope = decode_line(&encode_line(&env)).unwrap();
        assert_eq!(
            back.trace.as_deref().and_then(TraceContext::parse_header),
            Some(ctx)
        );
        let legacy: Envelope = decode_line(r#"{"id":3,"body":"Ping"}"#).unwrap();
        assert_eq!((legacy.id, legacy.trace), (3, None));

        let env = ResponseEnvelope {
            id: 7,
            body: Response::Pong,
        };
        let back: ResponseEnvelope = decode_line(&encode_line(&env)).unwrap();
        assert_eq!(back.id, 7);
        assert!(matches!(back.body, Response::Pong));
    }

    #[test]
    fn binary_frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024).unwrap(),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"hello");
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024).unwrap(),
            FrameRead::Frame
        ));
        assert!(buf.is_empty());
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        // Announced length past the limit: Oversized, no allocation.
        let mut cursor = std::io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024).unwrap(),
            FrameRead::Oversized
        ));

        // Stream ends inside the length prefix.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut cursor, &mut buf, 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Stream ends inside the announced payload.
        let mut wire = 100u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"only-a-few-bytes");
        let mut cursor = std::io::Cursor::new(wire);
        let err = read_frame(&mut cursor, &mut buf, 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn round_frames_roundtrip_and_validate() {
        let payload: Vec<u8> = (0..=255).collect();
        let frame = encode_round_frame(0xdead_beef_0042, 3, 1, &payload);
        let (session, round, from, body) = decode_round_frame(&frame).unwrap();
        assert_eq!(session, 0xdead_beef_0042);
        assert_eq!((round, from), (3, 1));
        assert_eq!(body, payload.as_slice());

        // An empty payload is legal; a short header is not.
        let empty = encode_round_frame(1, 0, 0, &[]);
        assert_eq!(decode_round_frame(&empty).unwrap().3.len(), 0);
        assert!(decode_round_frame(&empty[..15])
            .unwrap_err()
            .contains("header"));
    }

    #[test]
    fn traced_round_frames_roundtrip_and_reject_garbage() {
        let ctx = TraceContext::root().child();
        let payload: Vec<u8> = (0..=63).collect();

        // With a context: flag set, extension appended, roundtrips.
        let framed = encode_traced_round_frame(7, 2, 1, &payload, Some(&ctx));
        assert_eq!(
            framed.len(),
            ROUND_FRAME_HEADER_BYTES + payload.len() + TRACE_CONTEXT_BYTES
        );
        let (session, round, from, body, trace) = decode_traced_round_frame(&framed).unwrap();
        assert_eq!((session, round, from), (7, 2, 1));
        assert_eq!(body, payload.as_slice());
        assert_eq!(trace, Some(ctx));

        // Without: byte-identical to the untraced encoding.
        let plain = encode_traced_round_frame(7, 2, 1, &payload, None);
        assert_eq!(plain, encode_round_frame(7, 2, 1, &payload));
        let (.., body, trace) = decode_traced_round_frame(&plain).unwrap();
        assert_eq!(body, payload.as_slice());
        assert_eq!(trace, None);

        // An all-zero extension means "no context", not an error.
        let mut zeroed = encode_round_frame(7, 2, 1 | ROUND_FROM_TRACE_FLAG, &payload);
        zeroed.extend_from_slice(&[0u8; TRACE_CONTEXT_BYTES]);
        let (.., body, trace) = decode_traced_round_frame(&zeroed).unwrap();
        assert_eq!(body, payload.as_slice());
        assert_eq!(trace, None);

        // Flagged but too short to hold the extension: error, no panic.
        let truncated = encode_round_frame(7, 2, 1 | ROUND_FROM_TRACE_FLAG, &payload[..8]);
        assert!(decode_traced_round_frame(&truncated)
            .unwrap_err()
            .contains("trace extension"));
    }
}
