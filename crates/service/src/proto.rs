//! The daemon's wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON value on one line; the daemon answers with
//! exactly one JSON response line. Enum values use serde's default
//! externally-tagged form, so a unit variant is a bare string and a
//! payload variant is a single-key object:
//!
//! ```text
//! → "Ping"
//! ← "Pong"
//! → {"Ingest": {"records": "<src=\"S1\" dst=\"Internet\" route=\"tor1\"/>"}}
//! ← {"Ingested": {"changed": 1, "ignored": 0, "epoch": 1}}
//! → {"AuditSia": {"spec": {...}, "timeout_ms": 5000}}
//! ← {"Sia": {"epoch": 1, "cached": false, "elapsed_us": 812, "report": {...}}}
//! → "Status"
//! ← {"Status": {"epoch": 1, "shard_epochs": [0, 1, ...], "shard_records": [0, 1, ...], ...}}
//! ```
//!
//! The dependency store is sharded by host key with per-shard epochs
//! (`shard_epochs` in `Status`): an ingest bumps only the shards it
//! changes, and a cached `AuditSia` answer stays valid — `cached: true`
//! — across ingests that touch no shard its candidate hosts route to.
//! Each shard carries its own write lock, so concurrent `Ingest`
//! requests touching different hosts' shards land in parallel; `Status`
//! exposes the per-shard write counters (`shard_writes`) and a
//! `lock_waits` contention gauge (how often a writer had to wait for a
//! shard lock another writer held — near zero while traffic stays on
//! disjoint shards).
//!
//! Responses to failed requests are `{"Error": {"message": "..."}}`; the
//! connection stays open, so one client can pipeline many requests.

use indaas_core::AuditSpec;
use indaas_pia::PiaRanking;
use indaas_sia::AuditReport;
use serde::{Deserialize, Serialize};

/// Federation wire-protocol version this daemon speaks.
///
/// A peer handshake ([`Request::FederateHello`]) offers the dialer's
/// version; the listener answers with `min(offered, own)` in
/// [`Response::FederateWelcome`] and rejects anything below
/// [`MIN_FEDERATION_PROTOCOL_VERSION`].
pub const FEDERATION_PROTOCOL_VERSION: u32 = 1;

/// Oldest federation protocol version still accepted.
pub const MIN_FEDERATION_PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one decoded federation round payload. Hex encoding
/// doubles it on the wire, which must still fit a bounded request line
/// with JSON framing to spare (P-SOP ciphertexts are 128 bytes each, so
/// this admits 32k components per provider list).
pub const MAX_FEDERATE_PAYLOAD_BYTES: usize = 4 * 1024 * 1024;

/// Longest accepted peer node name in a federation handshake — peer
/// input, so bounded like everything else a peer controls.
pub const MAX_NODE_NAME_BYTES: usize = 256;

/// A client request, one per line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Stream a batch of Table-1 records into the versioned DepDB.
    Ingest {
        /// Table-1 record text (any number of lines).
        records: String,
    },
    /// Retract previously ingested records (exact match).
    Retract {
        /// Table-1 record text naming the records to remove.
        records: String,
    },
    /// Run (or serve from cache) a structural independence audit.
    AuditSia {
        /// The audit specification.
        spec: AuditSpec,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Run (or serve from cache) a private independence audit over
    /// explicit provider component sets.
    AuditPia {
        /// `(provider name, component set)` pairs.
        providers: Vec<(String, Vec<String>)>,
        /// Deployment width (how many providers per candidate).
        way: usize,
        /// MinHash signature size (`null` = exact P-SOP).
        minhash: Option<usize>,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Service counters and database state.
    Status,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// First line of a daemon-to-daemon peer session: protocol-version
    /// negotiation plus the dialer's node identity. After the
    /// [`Response::FederateWelcome`] answer the connection switches to
    /// *frame mode* and carries only [`Request::FederateData`] lines.
    FederateHello {
        /// Federation protocol version the dialer speaks.
        version: u32,
        /// The dialer's node name (its listen address by default) —
        /// used to reject self-connections.
        node: String,
    },
    /// One federation round frame, valid only inside a peer session.
    FederateData {
        /// Federation session id (shared by all parties of one audit).
        session: u64,
        /// The sender's ring-send ordinal within the session (0-based);
        /// the receiver's r-th receive must carry round `r`.
        round: u32,
        /// Ring index of the sending party.
        from: u32,
        /// Hex-encoded ciphertext-list payload (bounded by
        /// [`MAX_FEDERATE_PAYLOAD_BYTES`] once decoded).
        payload: String,
    },
    /// Coordinator instruction: run this daemon's party of a federated
    /// P-SOP audit. The daemon derives its private component set from its
    /// own dependency database, executes its ring rounds against the named
    /// successor, and answers [`Response::FederateDone`] with the
    /// fully-encrypted list destined for the auditing agent.
    FederateStart {
        /// Federation session id.
        session: u64,
        /// This daemon's ring index.
        index: u32,
        /// Number of provider parties on the ring.
        parties: u32,
        /// Address of the ring successor daemon.
        successor: String,
        /// P-SOP seed (all parties must agree).
        seed: u64,
        /// Multiset disambiguation flag (all parties must agree).
        multiset: bool,
        /// Per-round deadline in milliseconds (`null` = server default).
        round_timeout_ms: Option<u64>,
    },
}

/// The daemon's answer, one per request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Ingest`] / [`Request::Retract`].
    Ingested {
        /// Records that changed the database.
        changed: usize,
        /// Duplicate/absent records ignored.
        ignored: usize,
        /// Database epoch after the batch.
        epoch: u64,
    },
    /// Answer to [`Request::AuditSia`].
    Sia {
        /// Epoch the audit ran against.
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds
        /// (compute time on a miss, lookup time on a hit).
        elapsed_us: u64,
        /// The audit report.
        report: AuditReport,
    },
    /// Answer to [`Request::AuditPia`].
    Pia {
        /// Epoch the audit ran against (PIA provider sets are
        /// request-supplied, but the epoch still stamps the answer).
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds.
        elapsed_us: u64,
        /// Candidate deployments, most independent first.
        rankings: Vec<PiaRanking>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Current global database epoch (one bump per effective batch).
        epoch: u64,
        /// Distinct dependency records stored (all shards).
        records: usize,
        /// Hosts with at least one record.
        hosts: usize,
        /// Per-shard epochs of the host-sharded store, indexed by shard.
        /// A shard's epoch moves exactly when an ingest/retract changes
        /// *that shard's* records — cached audits pinned to other shards
        /// survive the batch.
        shard_epochs: Vec<u64>,
        /// Distinct records per shard, indexed like `shard_epochs`.
        shard_records: Vec<usize>,
        /// Effective write batches applied per shard since startup,
        /// indexed like `shard_epochs` (a batch spanning K shards
        /// counts once on each). Together with `lock_waits` this makes
        /// the store's write parallelism observable over the wire.
        shard_writes: Vec<u64>,
        /// Times a writer found a shard lock held by another writer and
        /// had to wait, summed over all shards. Stays near zero while
        /// concurrent ingests touch disjoint shards — a growing value
        /// means hot-shard contention (consider more shards).
        lock_waits: u64,
        /// Audit jobs currently queued (admitted, not yet running).
        jobs_queued: usize,
        /// Audit jobs currently executing on workers.
        jobs_running: usize,
        /// Live audit-result cache entries.
        cache_entries: usize,
        /// Cache hits since startup.
        cache_hits: u64,
        /// Cache misses since startup.
        cache_misses: u64,
        /// `cache_hits / (cache_hits + cache_misses)`, 0 before the
        /// first lookup.
        hit_ratio: f64,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
    },
    /// Answer to [`Request::Shutdown`].
    ShuttingDown,
    /// Answer to [`Request::FederateHello`]: the negotiated protocol
    /// version and the listener's node identity.
    FederateWelcome {
        /// Negotiated version: `min(offered, supported)`.
        version: u32,
        /// The listener's node name.
        node: String,
    },
    /// Answer to [`Request::FederateStart`], sent once this daemon's
    /// party finished all its ring rounds.
    FederateDone {
        /// Echo of the session id.
        session: u64,
        /// Hex-encoded fully-encrypted list for the auditing agent.
        payload: String,
        /// Protocol payload bytes this party sent (ring + agent hop).
        sent_bytes: u64,
        /// Protocol payload bytes this party received.
        recv_bytes: u64,
        /// Protocol messages this party sent (ring + agent hop).
        sent_msgs: u64,
        /// Protocol messages this party received.
        recv_msgs: u64,
    },
    /// Any failure: parse errors, audit errors, deadline overruns,
    /// queue overload.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
        }
    }
}

/// Encodes a protocol value as one wire line (no trailing newline).
pub fn encode_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("protocol types always serialize")
}

/// Decodes one wire line.
///
/// # Errors
///
/// Returns the underlying JSON error for malformed input.
pub fn decode_line<T: serde::Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line)
}

/// Hex-encodes a federation payload for the wire (lowercase, no prefix).
pub fn encode_payload(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[usize::from(b >> 4)]);
        out.push(DIGITS[usize::from(b & 0x0f)]);
    }
    String::from_utf8(out).expect("hex digits are ASCII")
}

/// Decodes a hex federation payload, enforcing
/// [`MAX_FEDERATE_PAYLOAD_BYTES`].
///
/// # Errors
///
/// Returns a human-readable message for odd-length input, non-hex
/// characters, or an oversized payload.
pub fn decode_payload(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_string());
    }
    if hex.len() / 2 > MAX_FEDERATE_PAYLOAD_BYTES {
        return Err(format!(
            "payload exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes"
        ));
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("invalid hex character {:?}", c as char)),
        }
    };
    let raw = hex.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks(2) {
        out.push(digit(pair[0])? << 4 | digit(pair[1])?);
    }
    Ok(out)
}

/// Outcome of [`read_bounded_line`].
pub enum LineRead {
    /// A complete line (terminator stripped is up to the caller).
    Line,
    /// Clean end of stream before any byte of a new line.
    Eof,
    /// The peer sent `limit` bytes with no newline; the stream can no
    /// longer be resynchronized and should be dropped.
    Oversized,
}

/// Reads one `\n`-terminated line into `buf` without letting the
/// buffer outgrow `limit` bytes — the shared guard both daemon and
/// client use against unbounded peer input.
///
/// # Errors
///
/// Propagates transport errors (including invalid UTF-8) from the
/// underlying reader.
pub fn read_bounded_line(
    reader: &mut impl std::io::BufRead,
    buf: &mut String,
    limit: u64,
) -> std::io::Result<LineRead> {
    use std::io::BufRead as _;
    buf.clear();
    let n = std::io::Read::take(reader, limit).read_line(buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.len() as u64 >= limit && !buf.ends_with('\n') {
        return Ok(LineRead::Oversized);
    }
    Ok(LineRead::Line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_core::CandidateDeployment;

    #[test]
    fn unit_variants_are_bare_strings() {
        assert_eq!(encode_line(&Request::Ping), "\"Ping\"");
        let back: Request = decode_line("\"Ping\"").unwrap();
        assert!(matches!(back, Request::Ping));
    }

    #[test]
    fn audit_request_roundtrips() {
        let req = Request::AuditSia {
            spec: AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
                "pair",
                ["S1", "S2"],
            )]),
            timeout_ms: Some(2500),
        };
        let line = encode_line(&req);
        assert!(!line.contains('\n'), "wire format is single-line");
        let back: Request = decode_line(&line).unwrap();
        match back {
            Request::AuditSia { spec, timeout_ms } => {
                assert_eq!(spec.candidates[0].name, "pair");
                assert_eq!(timeout_ms, Some(2500));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn omitted_option_fields_parse_as_none() {
        let back: Request =
            decode_line(r#"{"AuditPia": {"providers": [["A", ["x"]], ["B", ["y"]]], "way": 2}}"#)
                .unwrap();
        match back {
            Request::AuditPia {
                providers,
                way,
                minhash,
                timeout_ms,
            } => {
                assert_eq!(providers.len(), 2);
                assert_eq!(way, 2);
                assert_eq!(minhash, None);
                assert_eq!(timeout_ms, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(decode_line::<Request>("not json").is_err());
        assert!(decode_line::<Request>("\"NoSuchVariant\"").is_err());
        assert!(decode_line::<Request>(r#"{"AuditSia": {}}"#).is_err());
    }

    #[test]
    fn error_response_roundtrips() {
        let line = encode_line(&Response::error("boom"));
        let back: Response = decode_line(&line).unwrap();
        assert!(matches!(back, Response::Error { message } if message == "boom"));
    }

    #[test]
    fn federate_messages_roundtrip() {
        let hello = Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION,
            node: "127.0.0.1:4914".into(),
        };
        let back: Request = decode_line(&encode_line(&hello)).unwrap();
        assert!(matches!(
            back,
            Request::FederateHello { version, node }
                if version == FEDERATION_PROTOCOL_VERSION && node == "127.0.0.1:4914"
        ));

        let frame = Request::FederateData {
            session: 42,
            round: 1,
            from: 2,
            payload: encode_payload(&[0xde, 0xad, 0xbe, 0xef]),
        };
        match decode_line::<Request>(&encode_line(&frame)).unwrap() {
            Request::FederateData {
                session,
                round,
                from,
                payload,
            } => {
                assert_eq!((session, round, from), (42, 1, 2));
                assert_eq!(
                    decode_payload(&payload).unwrap(),
                    vec![0xde, 0xad, 0xbe, 0xef]
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let done = Response::FederateDone {
            session: 42,
            payload: encode_payload(&[1, 2, 3]),
            sent_bytes: 384,
            recv_bytes: 256,
            sent_msgs: 3,
            recv_msgs: 2,
        };
        assert!(matches!(
            decode_line::<Response>(&encode_line(&done)).unwrap(),
            Response::FederateDone {
                sent_bytes: 384,
                ..
            }
        ));
    }

    #[test]
    fn payload_hex_is_validated_and_bounded() {
        assert_eq!(decode_payload("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode_payload("00ff10").unwrap(), vec![0, 255, 16]);
        assert!(decode_payload("abc").unwrap_err().contains("odd length"));
        assert!(decode_payload("zz").unwrap_err().contains("invalid hex"));
        let oversized = "00".repeat(MAX_FEDERATE_PAYLOAD_BYTES + 1);
        assert!(decode_payload(&oversized).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn payload_roundtrip_is_identity() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_payload(&encode_payload(&bytes)).unwrap(), bytes);
    }
}
