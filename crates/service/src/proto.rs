//! The daemon's wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON value on one line; the daemon answers with
//! exactly one JSON response line. Enum values use serde's default
//! externally-tagged form, so a unit variant is a bare string and a
//! payload variant is a single-key object:
//!
//! ```text
//! → "Ping"
//! ← "Pong"
//! → {"Ingest": {"records": "<src=\"S1\" dst=\"Internet\" route=\"tor1\"/>"}}
//! ← {"Ingested": {"changed": 1, "ignored": 0, "epoch": 1}}
//! → {"AuditSia": {"spec": {...}, "timeout_ms": 5000}}
//! ← {"Sia": {"epoch": 1, "cached": false, "elapsed_us": 812, "report": {...}}}
//! ```
//!
//! Responses to failed requests are `{"Error": {"message": "..."}}`; the
//! connection stays open, so one client can pipeline many requests.

use indaas_core::AuditSpec;
use indaas_pia::PiaRanking;
use indaas_sia::AuditReport;
use serde::{Deserialize, Serialize};

/// A client request, one per line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Stream a batch of Table-1 records into the versioned DepDB.
    Ingest {
        /// Table-1 record text (any number of lines).
        records: String,
    },
    /// Retract previously ingested records (exact match).
    Retract {
        /// Table-1 record text naming the records to remove.
        records: String,
    },
    /// Run (or serve from cache) a structural independence audit.
    AuditSia {
        /// The audit specification.
        spec: AuditSpec,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Run (or serve from cache) a private independence audit over
    /// explicit provider component sets.
    AuditPia {
        /// `(provider name, component set)` pairs.
        providers: Vec<(String, Vec<String>)>,
        /// Deployment width (how many providers per candidate).
        way: usize,
        /// MinHash signature size (`null` = exact P-SOP).
        minhash: Option<usize>,
        /// Per-job deadline in milliseconds (`null` = server default).
        timeout_ms: Option<u64>,
    },
    /// Service counters and database state.
    Status,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// The daemon's answer, one per request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Ingest`] / [`Request::Retract`].
    Ingested {
        /// Records that changed the database.
        changed: usize,
        /// Duplicate/absent records ignored.
        ignored: usize,
        /// Database epoch after the batch.
        epoch: u64,
    },
    /// Answer to [`Request::AuditSia`].
    Sia {
        /// Epoch the audit ran against.
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds
        /// (compute time on a miss, lookup time on a hit).
        elapsed_us: u64,
        /// The audit report.
        report: AuditReport,
    },
    /// Answer to [`Request::AuditPia`].
    Pia {
        /// Epoch the audit ran against (PIA provider sets are
        /// request-supplied, but the epoch still stamps the answer).
        epoch: u64,
        /// True if served from the audit-result cache.
        cached: bool,
        /// Server-side time to produce the result, in microseconds.
        elapsed_us: u64,
        /// Candidate deployments, most independent first.
        rankings: Vec<PiaRanking>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Current database epoch.
        epoch: u64,
        /// Distinct dependency records stored.
        records: usize,
        /// Hosts with at least one record.
        hosts: usize,
        /// Audit jobs currently queued (admitted, not yet running).
        jobs_queued: usize,
        /// Audit jobs currently executing on workers.
        jobs_running: usize,
        /// Live audit-result cache entries.
        cache_entries: usize,
        /// Cache hits since startup.
        cache_hits: u64,
        /// Cache misses since startup.
        cache_misses: u64,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
    },
    /// Answer to [`Request::Shutdown`].
    ShuttingDown,
    /// Any failure: parse errors, audit errors, deadline overruns,
    /// queue overload.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
        }
    }
}

/// Encodes a protocol value as one wire line (no trailing newline).
pub fn encode_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("protocol types always serialize")
}

/// Decodes one wire line.
///
/// # Errors
///
/// Returns the underlying JSON error for malformed input.
pub fn decode_line<T: serde::Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line)
}

/// Outcome of [`read_bounded_line`].
pub enum LineRead {
    /// A complete line (terminator stripped is up to the caller).
    Line,
    /// Clean end of stream before any byte of a new line.
    Eof,
    /// The peer sent `limit` bytes with no newline; the stream can no
    /// longer be resynchronized and should be dropped.
    Oversized,
}

/// Reads one `\n`-terminated line into `buf` without letting the
/// buffer outgrow `limit` bytes — the shared guard both daemon and
/// client use against unbounded peer input.
///
/// # Errors
///
/// Propagates transport errors (including invalid UTF-8) from the
/// underlying reader.
pub fn read_bounded_line(
    reader: &mut impl std::io::BufRead,
    buf: &mut String,
    limit: u64,
) -> std::io::Result<LineRead> {
    use std::io::BufRead as _;
    buf.clear();
    let n = std::io::Read::take(reader, limit).read_line(buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.len() as u64 >= limit && !buf.ends_with('\n') {
        return Ok(LineRead::Oversized);
    }
    Ok(LineRead::Line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_core::CandidateDeployment;

    #[test]
    fn unit_variants_are_bare_strings() {
        assert_eq!(encode_line(&Request::Ping), "\"Ping\"");
        let back: Request = decode_line("\"Ping\"").unwrap();
        assert!(matches!(back, Request::Ping));
    }

    #[test]
    fn audit_request_roundtrips() {
        let req = Request::AuditSia {
            spec: AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
                "pair",
                ["S1", "S2"],
            )]),
            timeout_ms: Some(2500),
        };
        let line = encode_line(&req);
        assert!(!line.contains('\n'), "wire format is single-line");
        let back: Request = decode_line(&line).unwrap();
        match back {
            Request::AuditSia { spec, timeout_ms } => {
                assert_eq!(spec.candidates[0].name, "pair");
                assert_eq!(timeout_ms, Some(2500));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn omitted_option_fields_parse_as_none() {
        let back: Request =
            decode_line(r#"{"AuditPia": {"providers": [["A", ["x"]], ["B", ["y"]]], "way": 2}}"#)
                .unwrap();
        match back {
            Request::AuditPia {
                providers,
                way,
                minhash,
                timeout_ms,
            } => {
                assert_eq!(providers.len(), 2);
                assert_eq!(way, 2);
                assert_eq!(minhash, None);
                assert_eq!(timeout_ms, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(decode_line::<Request>("not json").is_err());
        assert!(decode_line::<Request>("\"NoSuchVariant\"").is_err());
        assert!(decode_line::<Request>(r#"{"AuditSia": {}}"#).is_err());
    }

    #[test]
    fn error_response_roundtrips() {
        let line = encode_line(&Response::error("boom"));
        let back: Response = decode_line(&line).unwrap();
        assert!(matches!(back, Response::Error { message } if message == "boom"));
    }
}
