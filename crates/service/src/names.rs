//! The telemetry-name registry: every counter, gauge and histogram the
//! daemon exposes, declared exactly once.
//!
//! `indaas-lint`'s registry-consistency rule enforces that no other
//! non-test code spells these strings out: registration
//! ([`crate::telemetry::Telemetry::new`]), refresh sites, the `--prom`
//! exposition and the `indaas top` dashboard all reference the consts,
//! so a renamed metric is a one-line change the compiler propagates
//! instead of silent scrape drift. The metric *meanings* are documented
//! in the catalog tables in [`crate::telemetry`].

// Counters (monotonic since startup).
pub const REQUESTS_TOTAL: &str = "requests_total";
pub const AUDITS_SIA_TOTAL: &str = "audits_sia_total";
pub const AUDITS_PIA_TOTAL: &str = "audits_pia_total";
pub const PUSH_AUDITS_TOTAL: &str = "push_audits_total";
pub const MUTATIONS_TOTAL: &str = "mutations_total";
pub const SCHED_JOBS_TOTAL: &str = "sched_jobs_total";
pub const OUTBOX_SHED_TOTAL: &str = "outbox_shed_total";
pub const DB_SEGMENT_SAVES_TOTAL: &str = "db_segment_saves_total";
pub const FED_WIRE_BYTES_TOTAL: &str = "fed_wire_bytes_total";
pub const FED_ROUNDS_TOTAL: &str = "fed_rounds_total";
pub const FED_FRAME_RETRIES_TOTAL: &str = "fed_frame_retries_total";
pub const FED_REDIALS_TOTAL: &str = "fed_redials_total";
pub const FED_PARTY_FAILURES_TOTAL: &str = "fed_party_failures_total";
pub const DB_SEGMENTS_QUARANTINED_TOTAL: &str = "db_segments_quarantined_total";
pub const FAULTS_INJECTED_TOTAL: &str = "faults_injected_total";
pub const LOOP_WAKEUPS_TOTAL: &str = "loop_wakeups_total";

// Gauges (instantaneous; some derived at snapshot time).
pub const SCHED_QUEUE_DEPTH: &str = "sched_queue_depth";
pub const SCHED_JOBS_RUNNING: &str = "sched_jobs_running";
pub const DB_SHARD_WRITES: &str = "db_shard_writes";
pub const DB_LOCK_WAITS: &str = "db_lock_waits";
pub const CACHE_SIA_HITS: &str = "cache_sia_hits";
pub const CACHE_SIA_MISSES: &str = "cache_sia_misses";
pub const CACHE_PIA_HITS: &str = "cache_pia_hits";
pub const CACHE_PIA_MISSES: &str = "cache_pia_misses";
pub const CACHE_ENTRIES: &str = "cache_entries";
pub const SUBSCRIPTIONS: &str = "subscriptions";
pub const ACTIVE_CONNS: &str = "active_conns";
pub const PUSHED_EVENTS: &str = "pushed_events";
pub const CONN_REGISTERED: &str = "conn_registered";
pub const WRITE_QUEUE_DEPTH: &str = "write_queue_depth";

// Histograms (microseconds unless noted).
pub const ENVELOPE_DECODE_US: &str = "envelope_decode_us";
pub const DISPATCH_US: &str = "dispatch_us";
pub const WRITE_US: &str = "write_us";
pub const LOOP_READY_EVENTS: &str = "loop_ready_events";
pub const SCHED_WAIT_US: &str = "sched_wait_us";
pub const AUDIT_SIA_US: &str = "audit_sia_us";
pub const AUDIT_PIA_US: &str = "audit_pia_us";
pub const PUSH_LATENCY_US: &str = "push_latency_us";
pub const INGEST_US: &str = "ingest_us";
pub const FED_PARTY_US: &str = "fed_party_us";

// Dynamic families: a fixed prefix plus a runtime component. The
// helpers below are the only way non-test code builds these names.
pub const AUDIT_STAGE_PREFIX: &str = "audit_stage_";
pub const OUTBOX_SHED_CONN_PREFIX: &str = "outbox_shed_conn_";

/// `audit_stage_<stage>_us` — the per-engine-stage histogram family.
pub fn audit_stage_us(stage: &str) -> String {
    format!("{AUDIT_STAGE_PREFIX}{stage}_us")
}

/// `outbox_shed_conn_<id>` — the per-connection shed counter family
/// (registered at accept, removed at close).
pub fn outbox_shed_conn(conn_id: u64) -> String {
    format!("{OUTBOX_SHED_CONN_PREFIX}{conn_id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_families_share_their_prefix() {
        assert!(audit_stage_us("rg_bdd").starts_with(AUDIT_STAGE_PREFIX));
        assert!(audit_stage_us("rg_bdd").ends_with("_us"));
        assert!(outbox_shed_conn(7).starts_with(OUTBOX_SHED_CONN_PREFIX));
    }
}
