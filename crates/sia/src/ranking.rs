//! Risk-group ranking (§4.1.3): size-based and failure-probability-based.

use indaas_graph::FaultGraph;
use rand::{Rng, SeedableRng};

use crate::riskgroup::{RgFamily, RiskGroup};

/// Inclusion–exclusion is exact up to this many minimal RGs (2²⁰ subsets);
/// beyond it [`top_event_probability`] falls back to Monte-Carlo.
pub const INCLUSION_EXCLUSION_LIMIT: usize = 20;

/// Ranks risk groups by size, smallest first (ties broken lexicographically
/// by member names so reports are deterministic; the paper notes SIA
/// "randomly orders RGs with the same size").
pub fn rank_by_size(family: &RgFamily, graph: &FaultGraph) -> Vec<RiskGroup> {
    let mut groups: Vec<RiskGroup> = family.groups().to_vec();
    groups.sort_by_cached_key(|g| (g.len(), g.names(graph)));
    groups
}

/// The probability that *all* events of `group` occur, assuming independent
/// basic events with the graph's per-node probabilities (`default_prob` for
/// unweighted nodes).
pub fn group_probability(group: &RiskGroup, graph: &FaultGraph, default_prob: f64) -> f64 {
    group
        .ids()
        .iter()
        .map(|&id| graph.node(id).prob.unwrap_or(default_prob))
        .product()
}

/// The probability of the top event, computed over the *minimal RG family*
/// by the inclusion–exclusion principle (exact for ≤
/// [`INCLUSION_EXCLUSION_LIMIT`] groups) or estimated by Monte-Carlo
/// sampling of the fault graph beyond that.
pub fn top_event_probability(family: &RgFamily, graph: &FaultGraph, default_prob: f64) -> f64 {
    if family.is_empty() {
        return 0.0;
    }
    if family.len() <= INCLUSION_EXCLUSION_LIMIT {
        inclusion_exclusion(family, graph, default_prob)
    } else {
        monte_carlo_top_probability(graph, default_prob, 200_000, 0x7019)
    }
}

/// Exact inclusion–exclusion: Pr(∪ᵢ RGᵢ) = Σ over non-empty subsets S of
/// (-1)^{|S|+1} · Pr(∩ S), where the intersection event is "all events in
/// the union of the subset's RGs fail".
fn inclusion_exclusion(family: &RgFamily, graph: &FaultGraph, default_prob: f64) -> f64 {
    let groups = family.groups();
    let m = groups.len();
    debug_assert!(m <= INCLUSION_EXCLUSION_LIMIT);
    let mut total = 0.0f64;
    for mask in 1u32..(1u32 << m) {
        let mut union: Option<RiskGroup> = None;
        for (i, g) in groups.iter().enumerate() {
            if mask >> i & 1 == 1 {
                union = Some(match union {
                    None => g.clone(),
                    Some(u) => u.union(g),
                });
            }
        }
        let u = union.expect("mask is non-empty");
        let p = group_probability(&u, graph, default_prob);
        if mask.count_ones() % 2 == 1 {
            total += p;
        } else {
            total -= p;
        }
    }
    total.clamp(0.0, 1.0)
}

/// Monte-Carlo estimate of the top-event probability directly on the fault
/// graph (does not depend on having the complete minimal RG family).
pub fn monte_carlo_top_probability(
    graph: &FaultGraph,
    default_prob: f64,
    rounds: u64,
    seed: u64,
) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let plan = graph.eval_plan();
    let basic = graph.basic_ids();
    let mut assignment = vec![false; graph.len()];
    let mut state = vec![false; graph.len()];
    let mut fails = 0u64;
    for _ in 0..rounds {
        for &id in &basic {
            let p = graph.node(id).prob.unwrap_or(default_prob);
            assignment[id as usize] = (rng.next_u64() as f64 / u64::MAX as f64) < p;
        }
        plan.evaluate_into(graph, &assignment, &mut state);
        fails += u64::from(state[graph.top() as usize]);
    }
    fails as f64 / rounds as f64
}

/// A risk group with its relative importance `I_C = Pr(C) / Pr(T)`.
#[derive(Clone, Debug)]
pub struct RankedByProbability {
    /// The risk group.
    pub group: RiskGroup,
    /// Pr(all events in the group fail).
    pub probability: f64,
    /// Relative importance with respect to the top event.
    pub importance: f64,
}

/// Ranks risk groups by relative importance, most important (highest
/// `I_C`) first. Returns the ranking plus the top-event probability used
/// as the normalizer.
pub fn rank_by_probability(
    family: &RgFamily,
    graph: &FaultGraph,
    default_prob: f64,
) -> (Vec<RankedByProbability>, f64) {
    let pr_top = top_event_probability(family, graph, default_prob);
    let mut ranked: Vec<RankedByProbability> = family
        .groups()
        .iter()
        .map(|g| {
            let p = group_probability(g, graph, default_prob);
            RankedByProbability {
                group: g.clone(),
                probability: p,
                importance: if pr_top > 0.0 { p / pr_top } else { 0.0 },
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .expect("importances are finite")
            .then_with(|| a.group.names(graph).cmp(&b.group.names(graph)))
    });
    (ranked, pr_top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::{minimal_risk_groups, MinimalConfig};
    use indaas_graph::detail::{fault_sets_to_graph, FaultSet};

    /// Figure 4(b): E1 = {A1: 0.1, A2: 0.2}, E2 = {A2: 0.2, A3: 0.3}.
    fn fig4b_graph() -> FaultGraph {
        fault_sets_to_graph(&[
            FaultSet::new("E1", [("A1", 0.1), ("A2", 0.2)]),
            FaultSet::new("E2", [("A2", 0.2), ("A3", 0.3)]),
        ])
        .unwrap()
    }

    #[test]
    fn fig4b_worked_example() {
        // Paper: Pr(T) = 0.1·0.3 + 0.2 − 0.1·0.3·0.2 = 0.224;
        // importances 0.2/0.224 = 0.8929 and 0.03/0.224 = 0.1339.
        let graph = fig4b_graph();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let (ranked, pr_top) = rank_by_probability(&rgs, &graph, 0.0);
        assert!((pr_top - 0.224).abs() < 1e-12, "Pr(T) = {pr_top}");
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].group.names(&graph), vec!["A2 fails"]);
        assert!((ranked[0].importance - 0.8929).abs() < 1e-4);
        assert_eq!(ranked[1].group.names(&graph), vec!["A1 fails", "A3 fails"]);
        assert!((ranked[1].importance - 0.1339).abs() < 1e-4);
    }

    #[test]
    fn monte_carlo_agrees_with_inclusion_exclusion() {
        let graph = fig4b_graph();
        let mc = monte_carlo_top_probability(&graph, 0.0, 400_000, 42);
        assert!(
            (mc - 0.224).abs() < 0.005,
            "Monte-Carlo estimate {mc} too far from 0.224"
        );
    }

    #[test]
    fn size_ranking_orders_smallest_first() {
        let graph = fig4b_graph();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let ranked = rank_by_size(&rgs, &graph);
        assert_eq!(ranked[0].len(), 1);
        assert_eq!(ranked[1].len(), 2);
    }

    #[test]
    fn group_probability_multiplies_members() {
        let graph = fig4b_graph();
        let a1 = graph.basic_by_name("A1 fails").unwrap();
        let a3 = graph.basic_by_name("A3 fails").unwrap();
        let g = RiskGroup::new(vec![a1, a3]);
        assert!((group_probability(&g, &graph, 0.0) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn empty_family_has_zero_top_probability() {
        let graph = fig4b_graph();
        assert_eq!(top_event_probability(&RgFamily::new(), &graph, 0.0), 0.0);
    }

    #[test]
    fn default_prob_used_for_unweighted() {
        use indaas_graph::detail::{component_sets_to_graph, ComponentSet};
        let graph = component_sets_to_graph(&[
            ComponentSet::new("E1", ["A"]),
            ComponentSet::new("E2", ["A"]),
        ])
        .unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let (ranked, pr_top) = rank_by_probability(&rgs, &graph, 0.1);
        assert!((pr_top - 0.1).abs() < 1e-12);
        assert!((ranked[0].probability - 0.1).abs() < 1e-12);
        assert!((ranked[0].importance - 1.0).abs() < 1e-12);
    }
}
