//! Binary decision diagram (BDD) analysis of fault graphs.
//!
//! A third risk-group engine alongside the MOCUS-style [`crate::minimal`]
//! algorithm and [`crate::sampling`]: the fault graph is compiled into a
//! reduced ordered BDD over the basic events, from which
//!
//! * **exact minimal cut sets** fall out of Rauzy's recursive traversal
//!   (for coherent graphs — all INDaaS gates are monotone), and
//! * the **exact top-event probability** is one Shannon-expansion pass —
//!   no inclusion–exclusion over cut-set subsets, so the
//!   [`crate::ranking::INCLUSION_EXCLUSION_LIMIT`] cap disappears.
//!
//! Classic fault-tree practice (and the natural upgrade path the paper's
//! §4.1.2 hints at when citing SAT-based counting): BDD sizes depend on
//! variable order and can blow up on adversarial structures, which is why
//! all three engines stay available.

use std::collections::HashMap;

use indaas_graph::{CancelToken, Cancelled, FaultGraph, Gate, NodeId};

use crate::riskgroup::{RgFamily, RiskGroup};

/// Id of a BDD node; 0 and 1 are the terminal FALSE/TRUE nodes.
type BddId = u32;

const FALSE: BddId = 0;
const TRUE: BddId = 1;

/// A reduced ordered BDD compiled from a fault graph.
///
/// Variables are the graph's basic events, ordered by their node id.
pub struct Bdd {
    /// `(var, lo, hi)` triples; entries 0 and 1 are sentinels.
    nodes: Vec<(u32, BddId, BddId)>,
    unique: HashMap<(u32, BddId, BddId), BddId>,
    and_cache: HashMap<(BddId, BddId), BddId>,
    or_cache: HashMap<(BddId, BddId), BddId>,
    /// Root of the compiled top event.
    root: BddId,
    /// Maps BDD variable index → fault-graph basic event id.
    var_to_basic: Vec<NodeId>,
}

impl Bdd {
    /// Compiles the fault graph's top event into a BDD.
    ///
    /// # Panics
    ///
    /// Panics if the BDD grows beyond `max_nodes` — pick a different
    /// engine for graphs with adversarial structure.
    pub fn compile(graph: &FaultGraph, max_nodes: usize) -> Self {
        Self::compile_cancellable(graph, max_nodes, &CancelToken::default())
            .expect("default token never cancels")
    }

    /// [`Bdd::compile`] with cooperative cancellation, polled once per
    /// fault-graph node (each node may allocate many BDD nodes, but the
    /// `max_nodes` cap bounds the work between polls).
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token trips mid-compilation.
    ///
    /// # Panics
    ///
    /// Panics if the BDD grows beyond `max_nodes`.
    pub fn compile_cancellable(
        graph: &FaultGraph,
        max_nodes: usize,
        token: &CancelToken,
    ) -> Result<Self, Cancelled> {
        let var_to_basic = graph.basic_ids();
        let basic_to_var: HashMap<NodeId, u32> = var_to_basic
            .iter()
            .enumerate()
            .map(|(v, &id)| (id, v as u32))
            .collect();
        let mut bdd = Bdd {
            nodes: vec![(u32::MAX, FALSE, FALSE), (u32::MAX, TRUE, TRUE)],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            root: FALSE,
            var_to_basic,
        };
        // Bottom-up over the graph: each node's failure function as a BDD.
        let order = graph.topo_order().expect("validated graphs are acyclic");
        let mut funcs: Vec<BddId> = vec![FALSE; graph.len()];
        for id in order {
            token.check()?;
            let node = graph.node(id);
            let f = match node.gate {
                None => {
                    let var = basic_to_var[&id];
                    bdd.mk(var, FALSE, TRUE)
                }
                Some(Gate::Or) => {
                    let mut acc = FALSE;
                    for &c in &node.children {
                        acc = bdd.or(acc, funcs[c as usize], max_nodes);
                    }
                    acc
                }
                Some(Gate::And) => {
                    let mut acc = TRUE;
                    for &c in &node.children {
                        acc = bdd.and(acc, funcs[c as usize], max_nodes);
                    }
                    acc
                }
                Some(Gate::KofN(k)) => {
                    let children: Vec<BddId> =
                        node.children.iter().map(|&c| funcs[c as usize]).collect();
                    bdd.at_least(&children, k as usize, max_nodes)
                }
            };
            funcs[id as usize] = f;
        }
        bdd.root = funcs[graph.top() as usize];
        Ok(bdd)
    }

    /// Number of live BDD nodes (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Hash-consed node constructor with the reduction rule.
    fn mk(&mut self, var: u32, lo: BddId, hi: BddId) -> BddId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = self.nodes.len() as BddId;
        self.nodes.push((var, lo, hi));
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn var(&self, id: BddId) -> u32 {
        self.nodes[id as usize].0
    }

    fn and(&mut self, a: BddId, b: BddId, max_nodes: usize) -> BddId {
        assert!(
            self.nodes.len() <= max_nodes,
            "BDD exceeded {max_nodes} nodes; use the MOCUS or sampling engine"
        );
        match (a, b) {
            (FALSE, _) | (_, FALSE) => return FALSE,
            (TRUE, x) | (x, TRUE) => return x,
            _ if a == b => return a,
            _ => {}
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let top = va.min(vb);
        let (a_lo, a_hi) = self.cofactors(a, top);
        let (b_lo, b_hi) = self.cofactors(b, top);
        let lo = self.and(a_lo, b_lo, max_nodes);
        let hi = self.and(a_hi, b_hi, max_nodes);
        let r = self.mk(top, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    fn or(&mut self, a: BddId, b: BddId, max_nodes: usize) -> BddId {
        assert!(
            self.nodes.len() <= max_nodes,
            "BDD exceeded {max_nodes} nodes; use the MOCUS or sampling engine"
        );
        match (a, b) {
            (TRUE, _) | (_, TRUE) => return TRUE,
            (FALSE, x) | (x, FALSE) => return x,
            _ if a == b => return a,
            _ => {}
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let top = va.min(vb);
        let (a_lo, a_hi) = self.cofactors(a, top);
        let (b_lo, b_hi) = self.cofactors(b, top);
        let lo = self.or(a_lo, b_lo, max_nodes);
        let hi = self.or(a_hi, b_hi, max_nodes);
        let r = self.mk(top, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    /// Shannon cofactors with respect to variable `v`.
    fn cofactors(&self, f: BddId, v: u32) -> (BddId, BddId) {
        if f <= TRUE || self.var(f) != v {
            (f, f)
        } else {
            let (_, lo, hi) = self.nodes[f as usize];
            (lo, hi)
        }
    }

    /// "At least k of the given functions are true", by dynamic programming
    /// over `(index, still_needed)`.
    fn at_least(&mut self, funcs: &[BddId], k: usize, max_nodes: usize) -> BddId {
        fn rec(
            bdd: &mut Bdd,
            funcs: &[BddId],
            i: usize,
            need: usize,
            memo: &mut HashMap<(usize, usize), BddId>,
            max_nodes: usize,
        ) -> BddId {
            if need == 0 {
                return TRUE;
            }
            if funcs.len() - i < need {
                return FALSE;
            }
            if let Some(&r) = memo.get(&(i, need)) {
                return r;
            }
            let with = rec(bdd, funcs, i + 1, need - 1, memo, max_nodes);
            let with = bdd.and(funcs[i], with, max_nodes);
            let without = rec(bdd, funcs, i + 1, need, memo, max_nodes);
            let r = bdd.or(with, without, max_nodes);
            memo.insert((i, need), r);
            r
        }
        rec(self, funcs, 0, k, &mut HashMap::new(), max_nodes)
    }

    /// Exact top-event probability by Shannon expansion: basic event
    /// probabilities come from the graph (or `default_prob`).
    pub fn top_probability(&self, graph: &FaultGraph, default_prob: f64) -> f64 {
        self.top_probability_with(graph, default_prob, &HashMap::new())
    }

    /// As [`Bdd::top_probability`], with per-component probability
    /// overrides (importance measures condition on `p_i ∈ {0, 1}`).
    pub fn top_probability_with(
        &self,
        graph: &FaultGraph,
        default_prob: f64,
        overrides: &HashMap<NodeId, f64>,
    ) -> f64 {
        let mut memo: HashMap<BddId, f64> = HashMap::new();
        memo.insert(FALSE, 0.0);
        memo.insert(TRUE, 1.0);
        self.prob_rec(self.root, graph, default_prob, overrides, &mut memo)
    }

    fn prob_rec(
        &self,
        f: BddId,
        graph: &FaultGraph,
        default_prob: f64,
        overrides: &HashMap<NodeId, f64>,
        memo: &mut HashMap<BddId, f64>,
    ) -> f64 {
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let (var, lo, hi) = self.nodes[f as usize];
        let basic = self.var_to_basic[var as usize];
        let p = overrides
            .get(&basic)
            .copied()
            .unwrap_or_else(|| graph.node(basic).prob.unwrap_or(default_prob));
        let plo = self.prob_rec(lo, graph, default_prob, overrides, memo);
        let phi = self.prob_rec(hi, graph, default_prob, overrides, memo);
        let out = (1.0 - p) * plo + p * phi;
        memo.insert(f, out);
        out
    }

    /// Exact minimal cut sets via Rauzy's recursive scheme for coherent
    /// functions: `MCS(f) = MCS(f_lo) ∪ {x ∪ s : s ∈ MCS(f_hi)}`, with
    /// subsumption minimization merging the two branches.
    pub fn minimal_cut_sets(&self) -> RgFamily {
        let mut memo: HashMap<BddId, Vec<Vec<NodeId>>> = HashMap::new();
        memo.insert(FALSE, Vec::new());
        memo.insert(TRUE, vec![Vec::new()]);
        let sets = self.mcs_rec(self.root, &mut memo);
        RgFamily::from_groups(sets.iter().map(|s| RiskGroup::new(s.clone())))
    }

    fn mcs_rec(&self, f: BddId, memo: &mut HashMap<BddId, Vec<Vec<NodeId>>>) -> Vec<Vec<NodeId>> {
        if let Some(cached) = memo.get(&f) {
            return cached.clone();
        }
        let (var, lo, hi) = self.nodes[f as usize];
        let basic = self.var_to_basic[var as usize];
        let lo_sets = self.mcs_rec(lo, memo);
        let hi_sets = self.mcs_rec(hi, memo);
        // Start with the low-branch sets (var healthy), then add var to
        // each high-branch set, dropping those already covered by a
        // low-branch set (minimality).
        let mut fam = RgFamily::from_groups(lo_sets.iter().map(|s| RiskGroup::new(s.clone())));
        for s in hi_sets {
            let mut with = s;
            with.push(basic);
            fam.insert(RiskGroup::new(with));
        }
        let out: Vec<Vec<NodeId>> = fam.groups().iter().map(|g| g.ids().to_vec()).collect();
        memo.insert(f, out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::{minimal_risk_groups, MinimalConfig};
    use crate::ranking::rank_by_probability;
    use indaas_graph::detail::{
        component_sets_to_graph, fault_sets_to_graph, ComponentSet, FaultSet,
    };
    use indaas_graph::FaultGraphBuilder;

    const CAP: usize = 1 << 20;

    #[test]
    fn fig4a_cut_sets_match_mocus() {
        let graph = component_sets_to_graph(&[
            ComponentSet::new("E1", ["A1", "A2"]),
            ComponentSet::new("E2", ["A2", "A3"]),
        ])
        .unwrap();
        let bdd = Bdd::compile(&graph, CAP);
        let bdd_mcs = bdd.minimal_cut_sets();
        let mocus = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(bdd_mcs.to_named(&graph), mocus.to_named(&graph));
    }

    #[test]
    fn fig4b_exact_probability() {
        let graph = fault_sets_to_graph(&[
            FaultSet::new("E1", [("A1", 0.1), ("A2", 0.2)]),
            FaultSet::new("E2", [("A2", 0.2), ("A3", 0.3)]),
        ])
        .unwrap();
        let bdd = Bdd::compile(&graph, CAP);
        let p = bdd.top_probability(&graph, 0.0);
        assert!((p - 0.224).abs() < 1e-12, "exact Pr(T) = {p}");
    }

    #[test]
    fn probability_beyond_inclusion_exclusion_limit() {
        // 30 sources sharing nothing: 30+ minimal RGs would overflow the
        // inclusion–exclusion cap; the BDD handles it exactly.
        let sets: Vec<ComponentSet> = (0..2)
            .map(|i| {
                ComponentSet::new(
                    format!("E{i}"),
                    (0..15).map(|j| format!("s{i}-c{j}")).collect::<Vec<_>>(),
                )
            })
            .collect();
        let graph = component_sets_to_graph(&sets).unwrap();
        let bdd = Bdd::compile(&graph, CAP);
        // Pr(source fails) = 1 - (1-p)^15 each; top = product.
        let p: f64 = 0.01;
        let per_source = 1.0 - (1.0f64 - p).powi(15);
        let expected = per_source * per_source;
        let got = bdd.top_probability(&graph, p);
        assert!(
            (got - expected).abs() < 1e-12,
            "got {got}, expected {expected}"
        );
        // The ranking module would have fallen back to Monte-Carlo here
        // (15*15 + ... minimal RGs > the limit); the BDD is exact.
        let family = bdd.minimal_cut_sets();
        assert_eq!(family.len(), 225);
        let (_, mc) = rank_by_probability(&family, &graph, p);
        assert!((mc - expected).abs() < 0.01, "Monte-Carlo fallback sanity");
    }

    #[test]
    fn kofn_gate_compiles() {
        let mut b = FaultGraphBuilder::new();
        let basics: Vec<_> = (0..4)
            .map(|i| b.basic(format!("r{i}"), Some(0.5)))
            .collect();
        let top = b.gate("svc", indaas_graph::Gate::KofN(2), basics);
        let graph = b.build(top).unwrap();
        let bdd = Bdd::compile(&graph, CAP);
        // At least 2 of 4 fair coins: 1 - C(4,0)/16 - C(4,1)/16 = 11/16.
        let p = bdd.top_probability(&graph, 0.5);
        assert!((p - 11.0 / 16.0).abs() < 1e-12);
        // Minimal cut sets: all 6 pairs.
        assert_eq!(bdd.minimal_cut_sets().len(), 6);
    }

    #[test]
    fn agrees_with_mocus_on_deeper_graph() {
        let mut b = FaultGraphBuilder::new();
        let tor = b.basic("tor", Some(0.1));
        let c1 = b.basic("c1", Some(0.2));
        let c2 = b.basic("c2", Some(0.2));
        let d1 = b.basic("d1", Some(0.05));
        let d2 = b.basic("d2", Some(0.05));
        let paths1 = b.gate("p1", indaas_graph::Gate::And, vec![c1, c2]);
        let n1 = b.gate("n1", indaas_graph::Gate::Or, vec![tor, paths1]);
        let s1 = b.gate("s1", indaas_graph::Gate::Or, vec![n1, d1]);
        let paths2 = b.gate("p2", indaas_graph::Gate::And, vec![c1, c2]);
        let n2 = b.gate("n2", indaas_graph::Gate::Or, vec![tor, paths2]);
        let s2 = b.gate("s2", indaas_graph::Gate::Or, vec![n2, d2]);
        let top = b.gate("t", indaas_graph::Gate::And, vec![s1, s2]);
        let graph = b.build(top).unwrap();

        let bdd = Bdd::compile(&graph, CAP);
        let mocus = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(
            bdd.minimal_cut_sets().to_named(&graph),
            mocus.to_named(&graph)
        );
        // Cross-check the exact probability against brute force over all
        // 2^5 assignments.
        let basic = graph.basic_ids();
        let mut expected = 0.0f64;
        for mask in 0u32..(1 << basic.len()) {
            let mut assignment = vec![false; graph.len()];
            let mut weight = 1.0;
            for (bit, &id) in basic.iter().enumerate() {
                let p = graph.node(id).prob.unwrap();
                if mask >> bit & 1 == 1 {
                    assignment[id as usize] = true;
                    weight *= p;
                } else {
                    weight *= 1.0 - p;
                }
            }
            if graph.evaluate(&assignment) {
                expected += weight;
            }
        }
        let got = bdd.top_probability(&graph, 0.0);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn node_budget_enforced() {
        // A parity-like adversarial structure is hard to build with
        // monotone gates; instead enforce the budget with a tiny cap.
        let sets: Vec<ComponentSet> = (0..4)
            .map(|i| {
                ComponentSet::new(
                    format!("E{i}"),
                    (0..8).map(|j| format!("s{i}c{j}")).collect::<Vec<_>>(),
                )
            })
            .collect();
        let graph = component_sets_to_graph(&sets).unwrap();
        let result = std::panic::catch_unwind(|| Bdd::compile(&graph, 8));
        assert!(result.is_err(), "a 8-node cap must be exceeded");
    }
}
