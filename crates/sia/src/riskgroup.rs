//! Risk groups and minimized families of risk groups.
//!
//! A risk group (RG) is a set of basic failure events whose simultaneous
//! occurrence fails the top event (§4.1.2). A *minimal* RG stays an RG
//! under no proper subset. [`RgFamily`] maintains a subsumption-minimized
//! collection: inserting a superset of an existing RG is a no-op, and
//! inserting a subset evicts the supersets.

use indaas_graph::{FaultGraph, NodeId};

/// One risk group: a sorted, deduplicated set of basic-event node ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RiskGroup {
    ids: Box<[NodeId]>,
}

impl RiskGroup {
    /// Builds a risk group from event ids (sorted and deduplicated).
    pub fn new(mut ids: Vec<NodeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        RiskGroup {
            ids: ids.into_boxed_slice(),
        }
    }

    /// The member event ids, sorted ascending.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of member events.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for the (degenerate) empty group.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True if `self ⊆ other` (sorted-merge subset test).
    pub fn is_subset_of(&self, other: &RiskGroup) -> bool {
        if self.ids.len() > other.ids.len() {
            return false;
        }
        let mut oi = 0;
        'outer: for &x in self.ids.iter() {
            while oi < other.ids.len() {
                match other.ids[oi].cmp(&x) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Union of two risk groups (used by AND-gate cartesian products).
    pub fn union(&self, other: &RiskGroup) -> RiskGroup {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        RiskGroup {
            ids: out.into_boxed_slice(),
        }
    }

    /// A 64-bit Bloom-style signature: bit `id % 64` set for every member.
    /// If `sig(a) & !sig(b) != 0` then `a ⊄ b`, a cheap pre-filter for
    /// subsumption checks.
    pub fn signature(&self) -> u64 {
        self.ids.iter().fold(0u64, |acc, &id| acc | 1 << (id % 64))
    }

    /// Resolves member ids to component names.
    pub fn names(&self, graph: &FaultGraph) -> Vec<String> {
        self.ids
            .iter()
            .map(|&id| graph.node(id).name.clone())
            .collect()
    }
}

/// A subsumption-minimized family of risk groups.
///
/// Maintains an inverted index from member element to group positions: a
/// subset (or superset) of an incoming group must share every (or some)
/// member with it, so subsumption candidates are found by bucket lookup
/// rather than scanning the whole family — the difference between hours
/// and seconds on the paper's topology-scale cut-set computations.
#[derive(Clone, Debug, Default)]
pub struct RgFamily {
    groups: Vec<RiskGroup>,
    sigs: Vec<u64>,
    by_element: std::collections::HashMap<NodeId, Vec<usize>>,
}

impl RgFamily {
    /// An empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a family from raw groups, minimizing as it goes.
    pub fn from_groups(groups: impl IntoIterator<Item = RiskGroup>) -> Self {
        let mut fam = Self::new();
        for g in groups {
            fam.insert(g);
        }
        fam
    }

    /// The minimized groups (unspecified order).
    pub fn groups(&self) -> &[RiskGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups are present.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Inserts `g`, keeping the family minimal. Returns true if `g` was
    /// retained (i.e., no existing group subsumes it).
    pub fn insert(&mut self, g: RiskGroup) -> bool {
        if g.is_empty() {
            // The empty group subsumes everything; keep only it.
            self.groups.clear();
            self.sigs.clear();
            self.by_element.clear();
            self.sigs.push(0);
            self.groups.push(g);
            return true;
        }
        let gsig = g.signature();
        // Any subset or superset of g shares at least one member with g, so
        // it lives in some bucket of g's elements. Collect candidates once.
        let mut candidates: Vec<usize> = g
            .ids()
            .iter()
            .flat_map(|id| self.by_element.get(id).into_iter().flatten().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        // Reject if an existing candidate is a subset of g (pre-filtered by
        // signature: existing ⊆ g requires sig(existing) ⊆ sig(g)).
        for &i in &candidates {
            if self.groups[i].len() <= g.len()
                && self.sigs[i] & !gsig == 0
                && self.groups[i].is_subset_of(&g)
            {
                return false;
            }
        }
        // Evict candidates that g subsumes (largest index first, so
        // swap_remove never disturbs a pending index).
        for &i in candidates.iter().rev() {
            if self.groups[i].len() >= g.len()
                && gsig & !self.sigs[i] == 0
                && g.is_subset_of(&self.groups[i])
            {
                self.remove_at(i);
            }
        }
        let idx = self.groups.len();
        for &id in g.ids() {
            self.by_element.entry(id).or_default().push(idx);
        }
        self.sigs.push(gsig);
        self.groups.push(g);
        true
    }

    /// Removes the group at `i` via swap_remove, fixing the inverted index
    /// of the group that moved into its slot.
    fn remove_at(&mut self, i: usize) {
        let removed = self.groups.swap_remove(i);
        self.sigs.swap_remove(i);
        for &id in removed.ids() {
            if let Some(bucket) = self.by_element.get_mut(&id) {
                bucket.retain(|&x| x != i);
            }
        }
        // The group formerly at the end (if any) now lives at index i.
        let old_last = self.groups.len();
        if i < old_last {
            for &id in self.groups[i].ids() {
                if let Some(bucket) = self.by_element.get_mut(&id) {
                    for x in bucket.iter_mut() {
                        if *x == old_last {
                            *x = i;
                        }
                    }
                }
            }
        }
    }

    /// Merges another family in.
    pub fn merge(&mut self, other: RgFamily) {
        for g in other.groups {
            self.insert(g);
        }
    }

    /// Whether the family contains exactly this group.
    pub fn contains(&self, g: &RiskGroup) -> bool {
        self.groups.iter().any(|x| x == g)
    }

    /// Groups resolved to sorted component-name lists (sorted family order:
    /// by size then names), convenient for assertions and reports.
    pub fn to_named(&self, graph: &FaultGraph) -> Vec<Vec<String>> {
        let mut named: Vec<Vec<String>> = self.groups.iter().map(|g| g.names(graph)).collect();
        named.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        named
    }

    /// Smallest group size, if any groups exist.
    pub fn min_size(&self) -> Option<usize> {
        self.groups.iter().map(RiskGroup::len).min()
    }

    /// Drops groups larger than `max_order`.
    pub fn truncate_order(&mut self, max_order: usize) {
        let mut i = 0;
        while i < self.groups.len() {
            if self.groups[i].len() > max_order {
                self.remove_at(i);
            } else {
                i += 1;
            }
        }
    }
}

impl FromIterator<RiskGroup> for RgFamily {
    fn from_iter<T: IntoIterator<Item = RiskGroup>>(iter: T) -> Self {
        Self::from_groups(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rg(ids: &[NodeId]) -> RiskGroup {
        RiskGroup::new(ids.to_vec())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let g = rg(&[3, 1, 2, 1]);
        assert_eq!(g.ids(), &[1, 2, 3]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn subset_tests() {
        assert!(rg(&[2]).is_subset_of(&rg(&[1, 2, 3])));
        assert!(rg(&[1, 3]).is_subset_of(&rg(&[1, 2, 3])));
        assert!(!rg(&[1, 4]).is_subset_of(&rg(&[1, 2, 3])));
        assert!(rg(&[]).is_subset_of(&rg(&[1])));
        assert!(!rg(&[1, 2, 3]).is_subset_of(&rg(&[1, 2])));
    }

    #[test]
    fn union_merges_sorted() {
        assert_eq!(rg(&[1, 3]).union(&rg(&[2, 3, 5])).ids(), &[1, 2, 3, 5]);
    }

    #[test]
    fn family_rejects_supersets() {
        let mut fam = RgFamily::new();
        assert!(fam.insert(rg(&[2])));
        assert!(
            !fam.insert(rg(&[1, 2])),
            "superset of {{2}} must be rejected"
        );
        assert_eq!(fam.len(), 1);
    }

    #[test]
    fn family_evicts_supersets_on_smaller_insert() {
        let mut fam = RgFamily::new();
        fam.insert(rg(&[1, 2]));
        fam.insert(rg(&[2, 3]));
        assert!(fam.insert(rg(&[2])));
        assert_eq!(fam.len(), 1);
        assert!(fam.contains(&rg(&[2])));
    }

    #[test]
    fn family_keeps_incomparable_groups() {
        let mut fam = RgFamily::new();
        fam.insert(rg(&[1, 3]));
        fam.insert(rg(&[2]));
        assert_eq!(fam.len(), 2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut fam = RgFamily::new();
        assert!(fam.insert(rg(&[1, 2])));
        assert!(!fam.insert(rg(&[1, 2])));
        assert_eq!(fam.len(), 1);
    }

    #[test]
    fn truncate_order_drops_large() {
        let mut fam = RgFamily::from_groups([rg(&[1]), rg(&[2, 3]), rg(&[4, 5, 6])]);
        fam.truncate_order(2);
        assert_eq!(fam.len(), 2);
        assert_eq!(fam.min_size(), Some(1));
    }

    #[test]
    fn signature_prefilter_is_sound() {
        // If is_subset_of holds, the signature relation must hold too.
        let a = rg(&[5, 70]); // 70 % 64 == 6
        let b = rg(&[5, 64 + 6, 9]);
        assert!(
            a.is_subset_of(&b) == ((a.signature() & !b.signature()) == 0 && a.is_subset_of(&b))
        );
    }
}
