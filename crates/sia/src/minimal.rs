//! The exact minimal risk group algorithm (§4.1.2).
//!
//! Classic bottom-up cut-set computation (MOCUS-style, adapted from fault
//! tree analysis [52, 60]): traversing the DAG from basic events to the top
//! event, each basic event contributes the family `{{e}}`, OR gates union
//! their children's families, and AND gates form cartesian products (unions
//! of one cut set per child). Families are subsumption-minimized after
//! every step, which keeps them exactly the *minimal* cut sets.
//!
//! The problem is NP-hard in general (Valiant [59]); the paper measures
//! 1046 minutes for topology B. Two standard mitigations are provided:
//!
//! * `max_order` truncation — only cut sets of at most `k` events are kept.
//!   For coherent (monotone) fault graphs this provably loses no cut set of
//!   size ≤ `k`, and small cut sets are precisely the "unexpected risk
//!   groups" the audit is hunting.
//! * `max_family` — a hard cap on intermediate family sizes; exceeding it
//!   aborts with the partial family flagged as truncated.

use indaas_graph::{CancelToken, Cancelled, FaultGraph, Gate, NodeId};

use crate::riskgroup::{RgFamily, RiskGroup};

/// Configuration for the minimal RG computation.
#[derive(Clone, Copy, Debug)]
pub struct MinimalConfig {
    /// Keep only cut sets with at most this many events (`None` = all).
    pub max_order: Option<usize>,
    /// Abort if an intermediate family would exceed this size.
    pub max_family: usize,
}

impl Default for MinimalConfig {
    fn default() -> Self {
        MinimalConfig {
            max_order: None,
            max_family: 1_000_000,
        }
    }
}

impl MinimalConfig {
    /// Convenience: truncated configuration keeping cut sets of size ≤ `k`.
    pub fn with_max_order(k: usize) -> Self {
        MinimalConfig {
            max_order: Some(k),
            ..Self::default()
        }
    }
}

/// Computes the minimal risk groups of `graph`'s top event.
///
/// With `config.max_order = Some(k)` the result is exactly the minimal risk
/// groups of size ≤ `k`.
///
/// # Panics
///
/// Panics if an intermediate family exceeds `config.max_family` — raise the
/// cap or set a `max_order` for graphs that large.
pub fn minimal_risk_groups(graph: &FaultGraph, config: &MinimalConfig) -> RgFamily {
    minimal_risk_groups_cancellable(graph, config, &CancelToken::default())
        .expect("default token never cancels")
}

/// [`minimal_risk_groups`] with cooperative cancellation: the token is
/// polled once per graph node and once per product row, so jobs stop
/// within a bounded amount of work of a cancel/deadline.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token trips mid-computation.
///
/// # Panics
///
/// Panics if an intermediate family exceeds `config.max_family`.
pub fn minimal_risk_groups_cancellable(
    graph: &FaultGraph,
    config: &MinimalConfig,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    let order = graph.topo_order().expect("validated graphs are acyclic");
    let mut families: Vec<Option<RgFamily>> = (0..graph.len()).map(|_| None).collect();
    // Count remaining uses so child families can be dropped early (keeps
    // peak memory proportional to the frontier, not the whole graph).
    let mut remaining_uses = vec![0usize; graph.len()];
    for node in graph.nodes() {
        for &c in &node.children {
            remaining_uses[c as usize] += 1;
        }
    }
    remaining_uses[graph.top() as usize] += 1;

    for id in order {
        token.check()?;
        let node = graph.node(id);
        let fam = match node.gate {
            None => RgFamily::from_groups([RiskGroup::new(vec![id])]),
            Some(Gate::Or) => {
                let mut fam = RgFamily::new();
                for &c in &node.children {
                    let child = take_child(&mut families, &mut remaining_uses, c);
                    fam.merge(child);
                    check_budget(&fam, config, &node.name);
                }
                fam
            }
            Some(Gate::And) => {
                let children: Vec<RgFamily> = node
                    .children
                    .iter()
                    .map(|&c| take_child(&mut families, &mut remaining_uses, c))
                    .collect();
                product_all(children, config, &node.name, token)?
            }
            Some(Gate::KofN(k)) => {
                let children: Vec<RgFamily> = node
                    .children
                    .iter()
                    .map(|&c| take_child(&mut families, &mut remaining_uses, c))
                    .collect();
                let mut fam = RgFamily::new();
                for combo in combinations(children.len(), k as usize) {
                    let subset: Vec<RgFamily> =
                        combo.iter().map(|&i| children[i].clone()).collect();
                    fam.merge(product_all(subset, config, &node.name, token)?);
                    check_budget(&fam, config, &node.name);
                }
                fam
            }
        };
        families[id as usize] = Some(fam);
    }
    Ok(families[graph.top() as usize]
        .take()
        .expect("top family computed"))
}

/// Fetches a child family, cloning only if it is still needed later.
fn take_child(
    families: &mut [Option<RgFamily>],
    remaining_uses: &mut [usize],
    c: NodeId,
) -> RgFamily {
    let idx = c as usize;
    remaining_uses[idx] -= 1;
    if remaining_uses[idx] == 0 {
        families[idx].take().expect("child computed before parent")
    } else {
        families[idx].clone().expect("child computed before parent")
    }
}

/// Cartesian product of families (AND semantics), pairwise with
/// minimization and truncation after every merge. Smallest families first
/// keeps intermediate results small.
fn product_all(
    mut children: Vec<RgFamily>,
    config: &MinimalConfig,
    at: &str,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    children.sort_by_key(RgFamily::len);
    let mut iter = children.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    if let Some(k) = config.max_order {
        acc.truncate_order(k);
    }
    for next in iter {
        let mut out = RgFamily::new();
        for a in acc.groups() {
            token.check()?;
            for b in next.groups() {
                let u = a.union(b);
                if config.max_order.is_some_and(|k| u.len() > k) {
                    continue;
                }
                out.insert(u);
            }
            check_budget(&out, config, at);
        }
        acc = out;
    }
    Ok(acc)
}

fn check_budget(fam: &RgFamily, config: &MinimalConfig, at: &str) {
    assert!(
        fam.len() <= config.max_family,
        "minimal RG family at {at:?} exceeded {} cut sets; \
         set MinimalConfig::max_order or raise max_family",
        config.max_family
    );
}

/// All `k`-subsets of `0..n`, lexicographic.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k == 0 || k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return out;
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_graph::detail::{component_sets_to_graph, ComponentSet};
    use indaas_graph::{FaultGraphBuilder, Gate};

    #[test]
    fn fig4a_minimal_rgs() {
        // Paper: minimal RGs of Figure 4(a) are {A2} and {A1, A3}.
        let graph = component_sets_to_graph(&[
            ComponentSet::new("E1", ["A1", "A2"]),
            ComponentSet::new("E2", ["A2", "A3"]),
        ])
        .unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let named = rgs.to_named(&graph);
        assert_eq!(
            named,
            vec![
                vec!["A2".to_string()],
                vec!["A1".to_string(), "A3".to_string()],
            ]
        );
    }

    #[test]
    fn fig4c_style_graph() {
        // Shared ToR, redundant cores, per-server disks.
        let mut b = FaultGraphBuilder::new();
        let tor = b.basic("ToR1", None);
        let c1 = b.basic("Core1", None);
        let c2 = b.basic("Core2", None);
        let d1 = b.basic("S1-disk", None);
        let d2 = b.basic("S2-disk", None);
        let p1 = b.gate("S1 paths", Gate::And, vec![c1, c2]);
        let n1 = b.gate("S1 net", Gate::Or, vec![tor, p1]);
        let s1 = b.gate("S1", Gate::Or, vec![n1, d1]);
        let p2 = b.gate("S2 paths", Gate::And, vec![c1, c2]);
        let n2 = b.gate("S2 net", Gate::Or, vec![tor, p2]);
        let s2 = b.gate("S2", Gate::Or, vec![n2, d2]);
        let top = b.gate("deployment", Gate::And, vec![s1, s2]);
        let graph = b.build(top).unwrap();

        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let named = rgs.to_named(&graph);
        assert!(named.contains(&vec!["ToR1".to_string()]));
        assert!(named.contains(&vec!["Core1".to_string(), "Core2".to_string()]));
        assert!(named.contains(&vec!["S1-disk".to_string(), "S2-disk".to_string()]));
        // Cross combinations with one disk and the other server's network:
        // disk1 + (cores) is subsumed by {Core1, Core2}? No: {Core1,Core2}
        // alone already kills both servers' networks, so disk+cores is a
        // superset and must NOT be minimal.
        assert_eq!(named.len(), 3);
    }

    #[test]
    fn max_order_truncation_keeps_small_groups_exact() {
        let graph = component_sets_to_graph(&[
            ComponentSet::new("E1", ["A", "X1", "X2"]),
            ComponentSet::new("E2", ["A", "Y1", "Y2"]),
        ])
        .unwrap();
        let full = minimal_risk_groups(&graph, &MinimalConfig::default());
        let truncated = minimal_risk_groups(&graph, &MinimalConfig::with_max_order(1));
        // The only size-1 minimal RG is {A}.
        assert_eq!(truncated.len(), 1);
        assert!(truncated.to_named(&graph).contains(&vec!["A".to_string()]));
        // And it is present in the full family too.
        assert!(full.to_named(&graph).contains(&vec!["A".to_string()]));
        // Full family: {A} plus 2x2 cross products.
        assert_eq!(full.len(), 5);
    }

    #[test]
    fn kofn_cut_sets() {
        // 2-of-3 gate over singletons: minimal cut sets are all pairs.
        let mut b = FaultGraphBuilder::new();
        let x = b.basic("x", None);
        let y = b.basic("y", None);
        let z = b.basic("z", None);
        let top = b.gate("t", Gate::KofN(2), vec![x, y, z]);
        let graph = b.build(top).unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(rgs.len(), 3);
        assert!(rgs.groups().iter().all(|g| g.len() == 2));
    }

    #[test]
    fn every_minimal_rg_fails_top_and_is_minimal() {
        // Property check on a moderately tangled graph.
        let mut b = FaultGraphBuilder::new();
        let basics: Vec<_> = (0..6).map(|i| b.basic(format!("c{i}"), None)).collect();
        let g1 = b.gate("g1", Gate::Or, vec![basics[0], basics[1]]);
        let g2 = b.gate("g2", Gate::And, vec![basics[1], basics[2], basics[3]]);
        let g3 = b.gate("g3", Gate::KofN(2), vec![basics[3], basics[4], basics[5]]);
        let m = b.gate("m", Gate::Or, vec![g2, g3]);
        let top = b.gate("top", Gate::And, vec![g1, m]);
        let graph = b.build(top).unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert!(!rgs.is_empty());
        for g in rgs.groups() {
            // The group fails the top event...
            let mut assignment = vec![false; graph.len()];
            for &id in g.ids() {
                assignment[id as usize] = true;
            }
            assert!(graph.evaluate(&assignment), "RG must fail the top event");
            // ...and removing any single member un-fails it (minimality).
            for &drop in g.ids() {
                let mut a = assignment.clone();
                a[drop as usize] = false;
                assert!(!graph.evaluate(&a), "RG must be minimal");
            }
        }
    }

    #[test]
    fn exhaustive_cross_check_small_graph() {
        // Brute-force all 2^n assignments and derive minimal cut sets; the
        // algorithm must agree exactly.
        let graph = component_sets_to_graph(&[
            ComponentSet::new("E1", ["a", "b"]),
            ComponentSet::new("E2", ["b", "c"]),
            ComponentSet::new("E3", ["c", "d"]),
        ])
        .unwrap();
        let basic = graph.basic_ids();
        let n = basic.len();
        let mut brute = RgFamily::new();
        for mask in 1u32..(1 << n) {
            let mut assignment = vec![false; graph.len()];
            for (bit, &id) in basic.iter().enumerate() {
                assignment[id as usize] = mask >> bit & 1 == 1;
            }
            if graph.evaluate(&assignment) {
                let ids: Vec<NodeId> = basic
                    .iter()
                    .enumerate()
                    .filter(|&(bit, _)| mask >> bit & 1 == 1)
                    .map(|(_, &id)| id)
                    .collect();
                brute.insert(RiskGroup::new(ids));
            }
        }
        let algo = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(algo.to_named(&graph), brute.to_named(&graph));
    }

    #[test]
    fn combinations_enumeration() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(3, 4).is_empty());
        assert!(combinations(3, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn family_budget_enforced() {
        // 2 sources × 12 disjoint components each → 144 cross products.
        let e1: Vec<String> = (0..12).map(|i| format!("x{i}")).collect();
        let e2: Vec<String> = (0..12).map(|i| format!("y{i}")).collect();
        let graph =
            component_sets_to_graph(&[ComponentSet::new("E1", e1), ComponentSet::new("E2", e2)])
                .unwrap();
        let config = MinimalConfig {
            max_order: None,
            max_family: 100,
        };
        let _ = minimal_risk_groups(&graph, &config);
    }
}
