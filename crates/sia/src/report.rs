//! Auditing reports and independence scores (§4.1.4).
//!
//! After risk groups are determined and ranked, SIA computes an
//! *independence score* per candidate deployment and ranks the deployments,
//! giving the auditing client an actionable comparison. Size-based scores
//! sum the sizes of the top-n RGs (bigger = more independent); probability
//! based scores sum the top-n relative importances (smaller = more
//! independent).

use indaas_graph::FaultGraph;
use serde::{Deserialize, Serialize};

use crate::ranking::{rank_by_probability, rank_by_size};
use crate::riskgroup::RgFamily;

/// Which scoring rule produced an independence score, and therefore which
/// direction is "better".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreKind {
    /// `indep(R) = Σ size(cᵢ)` over the top-n RGs; higher is better.
    SizeBased,
    /// `indep(R) = Σ I_{cᵢ}` over the top-n RGs; lower is better.
    ProbabilityBased,
}

impl ScoreKind {
    /// True if deployment score `a` is better than `b` under this rule.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            ScoreKind::SizeBased => a > b,
            ScoreKind::ProbabilityBased => a < b,
        }
    }
}

/// One ranked risk group as it appears in a report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankedRg {
    /// Component names in the group.
    pub events: Vec<String>,
    /// Group size.
    pub size: usize,
    /// Pr(all events fail), when probabilities were used.
    pub probability: Option<f64>,
    /// Relative importance I_C = Pr(C)/Pr(T), when probabilities were used.
    pub importance: Option<f64>,
}

/// The audit result for one candidate redundancy deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeploymentAudit {
    /// Deployment name (e.g., "Rack5 + Rack29").
    pub name: String,
    /// Risk groups, best-ranked (most critical) first.
    pub ranked_rgs: Vec<RankedRg>,
    /// The independence score over the top-n RGs.
    pub independence_score: f64,
    /// Scoring rule used.
    pub score_kind: ScoreKind,
    /// Number of *unexpected* RGs: groups strictly smaller than the
    /// replication factor.
    pub unexpected_rgs: usize,
    /// Estimated top-event (whole-deployment failure) probability, when
    /// probabilities were used.
    pub failure_probability: Option<f64>,
}

impl DeploymentAudit {
    /// Audits one deployment with size-based ranking over its (already
    /// computed) risk groups. `top_n` limits how many RGs feed the score
    /// (`None` = all).
    pub fn size_based(
        name: impl Into<String>,
        family: &RgFamily,
        graph: &FaultGraph,
        replication: usize,
        top_n: Option<usize>,
    ) -> Self {
        let ranked = rank_by_size(family, graph);
        let n = top_n.unwrap_or(ranked.len()).min(ranked.len());
        let score: f64 = ranked[..n].iter().map(|g| g.len() as f64).sum();
        let unexpected = ranked.iter().filter(|g| g.len() < replication).count();
        DeploymentAudit {
            name: name.into(),
            ranked_rgs: ranked
                .iter()
                .map(|g| RankedRg {
                    events: g.names(graph),
                    size: g.len(),
                    probability: None,
                    importance: None,
                })
                .collect(),
            independence_score: score,
            score_kind: ScoreKind::SizeBased,
            unexpected_rgs: unexpected,
            failure_probability: None,
        }
    }

    /// Audits one deployment with probability-based ranking.
    pub fn probability_based(
        name: impl Into<String>,
        family: &RgFamily,
        graph: &FaultGraph,
        replication: usize,
        default_prob: f64,
        top_n: Option<usize>,
    ) -> Self {
        let (ranked, pr_top) = rank_by_probability(family, graph, default_prob);
        let n = top_n.unwrap_or(ranked.len()).min(ranked.len());
        let score: f64 = ranked[..n].iter().map(|r| r.importance).sum();
        let unexpected = ranked
            .iter()
            .filter(|r| r.group.len() < replication)
            .count();
        DeploymentAudit {
            name: name.into(),
            ranked_rgs: ranked
                .iter()
                .map(|r| RankedRg {
                    events: r.group.names(graph),
                    size: r.group.len(),
                    probability: Some(r.probability),
                    importance: Some(r.importance),
                })
                .collect(),
            independence_score: score,
            score_kind: ScoreKind::ProbabilityBased,
            unexpected_rgs: unexpected,
            failure_probability: Some(pr_top),
        }
    }
}

/// The full auditing report returned to the client (Step 6 of §2):
/// candidate deployments ranked by independence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditReport {
    /// Deployments, best (most independent) first.
    pub deployments: Vec<DeploymentAudit>,
}

impl AuditReport {
    /// Assembles a report, sorting deployments best-first.
    ///
    /// Size-based audits order by descending score (Σ sizes of the top-n
    /// RGs). Probability-based audits order by ascending estimated
    /// whole-deployment failure probability — the quantity the paper's
    /// §6.2.1 case study uses to crown the winning deployment — with the
    /// Σ-of-importances score kept as a reported field (summing relative
    /// importances over the *full* RG list always totals ≈ 1, so it only
    /// discriminates under a client-chosen `top_n` cutoff).
    ///
    /// # Panics
    ///
    /// Panics if deployments mix scoring rules.
    pub fn new(mut deployments: Vec<DeploymentAudit>) -> Self {
        if let Some(kind) = deployments.first().map(|d| d.score_kind) {
            assert!(
                deployments.iter().all(|d| d.score_kind == kind),
                "cannot mix scoring rules in one report"
            );
            deployments.sort_by(|a, b| {
                let primary = match kind {
                    ScoreKind::SizeBased => b
                        .independence_score
                        .partial_cmp(&a.independence_score)
                        .expect("finite scores"),
                    ScoreKind::ProbabilityBased => {
                        let pa = a.failure_probability.unwrap_or(f64::INFINITY);
                        let pb = b.failure_probability.unwrap_or(f64::INFINITY);
                        pa.partial_cmp(&pb).expect("finite probabilities")
                    }
                };
                primary.then_with(|| a.name.cmp(&b.name))
            });
        }
        AuditReport { deployments }
    }

    /// The most independent deployment, if any were audited.
    pub fn best(&self) -> Option<&DeploymentAudit> {
        self.deployments.first()
    }

    /// Renders a human-readable text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== INDaaS auditing report ===\n");
        for (rank, d) in self.deployments.iter().enumerate() {
            out.push_str(&format!(
                "#{:<3} {:<30} score={:<10.4} unexpected RGs={}",
                rank + 1,
                d.name,
                d.independence_score,
                d.unexpected_rgs
            ));
            if let Some(p) = d.failure_probability {
                out.push_str(&format!(" Pr(outage)={p:.4}"));
            }
            out.push('\n');
            for (i, rg) in d.ranked_rgs.iter().take(4).enumerate() {
                out.push_str(&format!("     RG{}: {{{}}}", i + 1, rg.events.join(", ")));
                if let Some(imp) = rg.importance {
                    out.push_str(&format!(" importance={imp:.4}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// The change between two audits of the *same* deployment — the output of
/// a periodic re-audit (§2: configuration changes or evolution can
/// introduce new correlated-failure risks).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditDiff {
    /// Risk groups present now but not in the baseline audit, ranked as in
    /// the new audit. New *unexpected* groups are the alarm condition.
    pub introduced: Vec<RankedRg>,
    /// Risk groups from the baseline that no longer exist.
    pub resolved: Vec<RankedRg>,
    /// Change in the number of unexpected RGs (positive = regression).
    pub unexpected_delta: i64,
}

impl AuditDiff {
    /// Compares a fresh audit against a baseline of the same deployment.
    pub fn between(baseline: &DeploymentAudit, current: &DeploymentAudit) -> Self {
        let key = |rg: &RankedRg| rg.events.clone();
        let base: std::collections::HashSet<Vec<String>> =
            baseline.ranked_rgs.iter().map(key).collect();
        let cur: std::collections::HashSet<Vec<String>> =
            current.ranked_rgs.iter().map(key).collect();
        AuditDiff {
            introduced: current
                .ranked_rgs
                .iter()
                .filter(|rg| !base.contains(&rg.events))
                .cloned()
                .collect(),
            resolved: baseline
                .ranked_rgs
                .iter()
                .filter(|rg| !cur.contains(&rg.events))
                .cloned()
                .collect(),
            unexpected_delta: current.unexpected_rgs as i64 - baseline.unexpected_rgs as i64,
        }
    }

    /// True if the re-audit found nothing new and nothing regressed.
    pub fn is_clean(&self) -> bool {
        self.introduced.is_empty() && self.unexpected_delta <= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::{minimal_risk_groups, MinimalConfig};
    use indaas_graph::detail::{component_sets_to_graph, ComponentSet};

    fn audit_of(sets: &[ComponentSet], name: &str) -> (DeploymentAudit, FaultGraph) {
        let graph = component_sets_to_graph(sets).unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        (
            DeploymentAudit::size_based(name, &rgs, &graph, sets.len(), None),
            graph,
        )
    }

    #[test]
    fn unexpected_rg_counting() {
        let (audit, _) = audit_of(
            &[
                ComponentSet::new("E1", ["shared", "a"]),
                ComponentSet::new("E2", ["shared", "b"]),
            ],
            "with-shared",
        );
        // {shared} is size 1 < replication 2 → one unexpected RG.
        assert_eq!(audit.unexpected_rgs, 1);

        let (clean, _) = audit_of(
            &[
                ComponentSet::new("E1", ["a"]),
                ComponentSet::new("E2", ["b"]),
            ],
            "clean",
        );
        assert_eq!(clean.unexpected_rgs, 0);
    }

    #[test]
    fn report_ranks_size_based_descending() {
        let (risky, _) = audit_of(
            &[
                ComponentSet::new("E1", ["shared"]),
                ComponentSet::new("E2", ["shared"]),
            ],
            "risky",
        );
        let (clean, _) = audit_of(
            &[
                ComponentSet::new("E1", ["a"]),
                ComponentSet::new("E2", ["b"]),
            ],
            "clean",
        );
        let report = AuditReport::new(vec![risky, clean]);
        assert_eq!(report.best().unwrap().name, "clean");
    }

    #[test]
    fn probability_based_report_ranks_ascending() {
        let graph_risky = component_sets_to_graph(&[
            ComponentSet::new("E1", ["shared"]),
            ComponentSet::new("E2", ["shared"]),
        ])
        .unwrap();
        let rgs_risky = minimal_risk_groups(&graph_risky, &MinimalConfig::default());
        let risky =
            DeploymentAudit::probability_based("risky", &rgs_risky, &graph_risky, 2, 0.1, None);
        let graph_clean = component_sets_to_graph(&[
            ComponentSet::new("E1", ["a"]),
            ComponentSet::new("E2", ["b"]),
        ])
        .unwrap();
        let rgs_clean = minimal_risk_groups(&graph_clean, &MinimalConfig::default());
        let clean =
            DeploymentAudit::probability_based("clean", &rgs_clean, &graph_clean, 2, 0.1, None);
        // Clean deployment: Pr(outage) = 0.01 < risky's 0.1.
        assert!(clean.failure_probability.unwrap() < risky.failure_probability.unwrap());
        let report = AuditReport::new(vec![risky, clean]);
        assert_eq!(report.best().unwrap().name, "clean");
    }

    #[test]
    #[should_panic(expected = "cannot mix scoring rules")]
    fn mixed_rules_rejected() {
        let (a, graph) = audit_of(
            &[
                ComponentSet::new("E1", ["a"]),
                ComponentSet::new("E2", ["b"]),
            ],
            "a",
        );
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let b = DeploymentAudit::probability_based("b", &rgs, &graph, 2, 0.1, None);
        let _ = AuditReport::new(vec![a, b]);
    }

    #[test]
    fn render_contains_key_facts() {
        let (audit, _) = audit_of(
            &[
                ComponentSet::new("E1", ["shared", "a"]),
                ComponentSet::new("E2", ["shared", "b"]),
            ],
            "demo",
        );
        let text = AuditReport::new(vec![audit]).render();
        assert!(text.contains("demo"));
        assert!(text.contains("shared"));
        assert!(text.contains("unexpected RGs=1"));
    }

    #[test]
    fn diff_flags_introduced_shared_dependency() {
        // Baseline: clean. Later a config change routes both sources
        // through one shared component.
        let (before, _) = audit_of(
            &[
                ComponentSet::new("E1", ["a"]),
                ComponentSet::new("E2", ["b"]),
            ],
            "svc",
        );
        let (after, _) = audit_of(
            &[
                ComponentSet::new("E1", ["a", "shared"]),
                ComponentSet::new("E2", ["b", "shared"]),
            ],
            "svc",
        );
        let diff = AuditDiff::between(&before, &after);
        assert!(!diff.is_clean());
        assert_eq!(diff.unexpected_delta, 1);
        assert!(diff
            .introduced
            .iter()
            .any(|rg| rg.events == vec!["shared".to_string()]));
        // And the reverse direction reports the fix.
        let fix = AuditDiff::between(&after, &before);
        assert!(fix.is_clean());
        assert_eq!(fix.unexpected_delta, -1);
        assert!(fix
            .resolved
            .iter()
            .any(|rg| rg.events == vec!["shared".to_string()]));
    }

    #[test]
    fn identical_audits_diff_clean() {
        let (a, _) = audit_of(
            &[
                ComponentSet::new("E1", ["a"]),
                ComponentSet::new("E2", ["b"]),
            ],
            "svc",
        );
        let diff = AuditDiff::between(&a, &a);
        assert!(diff.is_clean());
        assert!(diff.introduced.is_empty() && diff.resolved.is_empty());
    }

    #[test]
    fn top_n_limits_score() {
        let (audit_all, graph) = audit_of(
            &[
                ComponentSet::new("E1", ["s", "a1", "a2"]),
                ComponentSet::new("E2", ["s", "b1", "b2"]),
            ],
            "x",
        );
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        let audit_top1 = DeploymentAudit::size_based("x", &rgs, &graph, 2, Some(1));
        assert!(audit_top1.independence_score < audit_all.independence_score);
        assert_eq!(audit_top1.independence_score, 1.0); // {s} alone.
    }
}
