//! Structural independence auditing (SIA, §4.1 of the paper).
//!
//! Given full dependency data in a [`indaas_deps::DepDb`], SIA:
//!
//! 1. builds an explicit *fault graph* for the audited redundancy
//!    deployment ([`builder`], §4.1.1 steps 1–6),
//! 2. determines *risk groups* — sets of basic failures that take the whole
//!    deployment down — with either the exact [`minimal`] cut-set algorithm
//!    or the scalable Monte-Carlo [`sampling`] algorithm (§4.1.2),
//! 3. ranks the risk groups by size or failure probability ([`ranking`],
//!    §4.1.3), and
//! 4. renders an auditing report with per-deployment independence scores
//!    ([`report`], §4.1.4).
//!
//! # Examples
//!
//! Auditing Figure 4(a)'s two-system deployment end to end:
//!
//! ```
//! use indaas_graph::detail::{component_sets_to_graph, ComponentSet};
//! use indaas_sia::minimal::{minimal_risk_groups, MinimalConfig};
//!
//! let sets = vec![
//!     ComponentSet::new("E1", ["A1", "A2"]),
//!     ComponentSet::new("E2", ["A2", "A3"]),
//! ];
//! let graph = component_sets_to_graph(&sets).unwrap();
//! let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
//! let named = rgs.to_named(&graph);
//! // The minimal risk groups are {A2} and {A1, A3}.
//! assert_eq!(named.len(), 2);
//! assert!(named.contains(&vec!["A2".to_string()]));
//! assert!(named.contains(&vec!["A1".to_string(), "A3".to_string()]));
//! ```

pub mod bdd;
pub mod builder;
pub mod importance;
pub mod minimal;
pub mod ranking;
pub mod report;
pub mod riskgroup;
pub mod sampling;

pub use bdd::Bdd;
pub use builder::{build_fault_graph, BuildError, BuildSpec};
pub use importance::{component_importance, ComponentImportance};
pub use minimal::{minimal_risk_groups, minimal_risk_groups_cancellable, MinimalConfig};
pub use ranking::{rank_by_probability, rank_by_size, top_event_probability};
pub use report::{AuditDiff, AuditReport, DeploymentAudit, RankedRg, ScoreKind};
pub use riskgroup::{RgFamily, RiskGroup};
pub use sampling::{failure_sampling, failure_sampling_cancellable, SamplingConfig};
