//! Building a deployment fault graph from DepDB (§4.1.1, steps 1–6).
//!
//! Top-down construction, exactly as the paper describes:
//!
//! 1. the top event is the failure of the whole redundancy deployment;
//! 2. each server in the client's specification becomes a child, joined by
//!    an AND gate (or k-of-n for n-of-m redundancy);
//! 3. each server's failure is an OR over its network, hardware and
//!    software failure events (only the categories present / requested);
//! 4. hardware failure is an OR over the server's physical components;
//! 5. network failure is an AND over the server's redundant routes, each
//!    route an OR over the devices on it;
//! 6. software failure is an OR over programs; each program is an OR over
//!    the packages it depends on (a failing package fails the program).

use indaas_deps::{DepView, FailureProbModel};
use indaas_graph::{FaultGraph, FaultGraphBuilder, Gate, GraphError, NodeId};

/// What the auditing client asked for (Step 1 of §2): the deployment's
/// servers, the redundancy level, and which dependency categories to audit.
#[derive(Clone, Debug)]
pub struct BuildSpec {
    /// Deployment name, used for the top event.
    pub name: String,
    /// The redundant servers (replicas).
    pub servers: Vec<String>,
    /// How many replicas must stay alive for the service to survive
    /// (1 = plain replication: service dies only when all replicas die).
    pub needed_alive: usize,
    /// Audit network dependencies.
    pub network: bool,
    /// Audit hardware dependencies.
    pub hardware: bool,
    /// Audit software dependencies.
    pub software: bool,
    /// Optional failure-probability model for weighting basic events.
    pub prob_model: Option<FailureProbModel>,
}

impl BuildSpec {
    /// A spec auditing every category for plain replication across
    /// `servers`.
    pub fn all(name: impl Into<String>, servers: Vec<String>) -> Self {
        BuildSpec {
            name: name.into(),
            servers,
            needed_alive: 1,
            network: true,
            hardware: true,
            software: true,
            prob_model: None,
        }
    }

    /// Disables all categories except network.
    pub fn network_only(name: impl Into<String>, servers: Vec<String>) -> Self {
        BuildSpec {
            hardware: false,
            software: false,
            ..Self::all(name, servers)
        }
    }
}

/// Errors from fault-graph construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The spec listed no servers.
    NoServers,
    /// `needed_alive` is zero or exceeds the number of servers.
    BadRedundancy,
    /// A server has no dependency records in any requested category.
    NoData(String),
    /// The underlying graph construction failed.
    Graph(GraphError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoServers => write!(f, "specification lists no servers"),
            BuildError::BadRedundancy => write!(f, "needed_alive out of range"),
            BuildError::NoData(s) => write!(f, "no dependency data for server {s:?}"),
            BuildError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

/// Builds the deployment fault graph for `spec` from the dependency data in
/// `db` — any read-only [`DepView`]: a monolithic `DepDb`, a sharded
/// snapshot, or a trait object over either.
///
/// # Errors
///
/// Returns a [`BuildError`] when the spec is inconsistent or a server has
/// no data in any requested category.
pub fn build_fault_graph<D: DepView + ?Sized>(
    db: &D,
    spec: &BuildSpec,
) -> Result<FaultGraph, BuildError> {
    if spec.servers.is_empty() {
        return Err(BuildError::NoServers);
    }
    if spec.needed_alive == 0 || spec.needed_alive > spec.servers.len() {
        return Err(BuildError::BadRedundancy);
    }
    let mut b = FaultGraphBuilder::new();
    let prob = |name: &str| spec.prob_model.as_ref().map(|m| m.prob_for(name));

    let mut server_events: Vec<NodeId> = Vec::with_capacity(spec.servers.len());
    for server in &spec.servers {
        let mut causes: Vec<NodeId> = Vec::new();

        // Step 5: network failure = AND over redundant routes, each route
        // an OR over its devices.
        if spec.network {
            let routes = db.network_deps(server);
            if !routes.is_empty() {
                let path_events: Vec<NodeId> = routes
                    .iter()
                    .enumerate()
                    .map(|(i, route)| {
                        let devices: Vec<NodeId> = route
                            .route
                            .iter()
                            .map(|dev| {
                                let p = prob(dev);
                                b.basic(dev.clone(), p)
                            })
                            .collect();
                        b.gate(
                            format!("{server} path#{i} ({}→{})", route.src, route.dst),
                            Gate::Or,
                            devices,
                        )
                    })
                    .collect();
                causes.push(b.gate(format!("{server} network fails"), Gate::And, path_events));
            }
        }

        // Step 4: hardware failure = OR over physical components.
        if spec.hardware {
            let hw = db.hardware_deps(server);
            if !hw.is_empty() {
                let comps: Vec<NodeId> = hw
                    .iter()
                    .map(|h| {
                        let p = prob(&h.dep);
                        b.basic(h.dep.clone(), p)
                    })
                    .collect();
                causes.push(b.gate(format!("{server} hardware fails"), Gate::Or, comps));
            }
        }

        // Step 6: software failure = OR over programs; program = OR over
        // its packages (plus the program itself as a basic event, so a
        // program with no package data still contributes a failure mode).
        if spec.software {
            let sw = db.software_deps(server);
            if !sw.is_empty() {
                let pgm_events: Vec<NodeId> = sw
                    .iter()
                    .map(|s| {
                        let mut parts: Vec<NodeId> = Vec::with_capacity(s.deps.len() + 1);
                        let self_prob = prob(&s.pgm);
                        parts.push(b.basic(s.pgm.clone(), self_prob));
                        for pkg in &s.deps {
                            let p = prob(pkg);
                            parts.push(b.basic(pkg.clone(), p));
                        }
                        b.gate(format!("{server}:{} fails", s.pgm), Gate::Or, parts)
                    })
                    .collect();
                causes.push(b.gate(format!("{server} software fails"), Gate::Or, pgm_events));
            }
        }

        if causes.is_empty() {
            return Err(BuildError::NoData(server.clone()));
        }
        // Step 3: the server fails if any category fails.
        server_events.push(b.gate(format!("{server} fails"), Gate::Or, causes));
    }

    // Step 2: redundancy across servers. The deployment fails once
    // (m - needed_alive + 1) servers have failed.
    let fail_threshold = spec.servers.len() - spec.needed_alive + 1;
    let gate = if fail_threshold == spec.servers.len() {
        Gate::And
    } else {
        Gate::KofN(fail_threshold as u32)
    };
    let top = b.gate(format!("{} fails", spec.name), gate, server_events);
    Ok(b.build(top)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::{minimal_risk_groups, MinimalConfig};
    use indaas_deps::{parse_records, DepDb};

    /// The Figure 2/3 sample: two servers behind a shared ToR with
    /// redundant cores, per-server hardware, shared libc6.
    fn figure3_db() -> DepDb {
        DepDb::from_records(
            parse_records(
                r#"
                <src="S1" dst="Internet" route="ToR1,Core1"/>
                <src="S1" dst="Internet" route="ToR1,Core2"/>
                <src="S2" dst="Internet" route="ToR1,Core1"/>
                <src="S2" dst="Internet" route="ToR1,Core2"/>
                <hw="S1" type="CPU" dep="S1-Intel-X5550"/>
                <hw="S1" type="Disk" dep="S1-SED900"/>
                <hw="S2" type="CPU" dep="S2-Intel-X5550"/>
                <hw="S2" type="Disk" dep="S2-SED900"/>
                <pgm="QueryEngine1" hw="S1" dep="libc6,libgcc1"/>
                <pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
                <pgm="QueryEngine2" hw="S2" dep="libc6,libgcc1"/>
                <pgm="Riak2" hw="S2" dep="libc6,libsvn1"/>
            "#,
            )
            .unwrap(),
        )
    }

    fn spec() -> BuildSpec {
        BuildSpec::all("storage", vec!["S1".into(), "S2".into()])
    }

    #[test]
    fn figure3_graph_semantics() {
        let g = build_fault_graph(&figure3_db(), &spec()).unwrap();
        // Shared ToR1 kills both servers' networks.
        assert!(g.evaluate_named(&["ToR1"]).unwrap());
        // Shared libc6 kills software on both servers.
        assert!(g.evaluate_named(&["libc6"]).unwrap());
        // One core leaves the redundant path alive.
        assert!(!g.evaluate_named(&["Core1"]).unwrap());
        assert!(g.evaluate_named(&["Core1", "Core2"]).unwrap());
        // Per-server hardware needs both servers hit.
        assert!(!g.evaluate_named(&["S1-SED900"]).unwrap());
        assert!(g.evaluate_named(&["S1-SED900", "S2-SED900"]).unwrap());
    }

    #[test]
    fn figure3_minimal_rgs_contain_expected_singletons() {
        let g = build_fault_graph(&figure3_db(), &spec()).unwrap();
        let rgs = minimal_risk_groups(&g, &MinimalConfig::default());
        let named = rgs.to_named(&g);
        // The two unexpected (size-1) RGs of the running example.
        assert!(named.contains(&vec!["ToR1".to_string()]));
        assert!(named.contains(&vec!["libc6".to_string()]));
        assert!(named.contains(&vec!["Core1".to_string(), "Core2".to_string()]));
    }

    #[test]
    fn category_filters_respected() {
        let db = figure3_db();
        let g = build_fault_graph(
            &db,
            &BuildSpec::network_only("net", vec!["S1".into(), "S2".into()]),
        )
        .unwrap();
        assert!(g.basic_by_name("ToR1").is_some());
        assert!(g.basic_by_name("libc6").is_none());
        assert!(g.basic_by_name("S1-SED900").is_none());
    }

    #[test]
    fn n_of_m_redundancy_gate() {
        let db = DepDb::from_records(
            parse_records(
                r#"
                <hw="S1" type="Disk" dep="d1"/>
                <hw="S2" type="Disk" dep="d2"/>
                <hw="S3" type="Disk" dep="d3"/>
            "#,
            )
            .unwrap(),
        );
        let spec = BuildSpec {
            needed_alive: 2,
            ..BuildSpec::all("q", vec!["S1".into(), "S2".into(), "S3".into()])
        };
        let g = build_fault_graph(&db, &spec).unwrap();
        // Needs 2 alive of 3: two disk failures kill it, one does not.
        assert!(!g.evaluate_named(&["d1"]).unwrap());
        assert!(g.evaluate_named(&["d1", "d3"]).unwrap());
    }

    #[test]
    fn probability_model_applied() {
        let model = FailureProbModel::new(0.01).with_rule("ToR", 0.2);
        let spec = BuildSpec {
            prob_model: Some(model),
            ..spec()
        };
        let g = build_fault_graph(&figure3_db(), &spec).unwrap();
        let tor = g.basic_by_name("ToR1").unwrap();
        assert_eq!(g.node(tor).prob, Some(0.2));
        let libc = g.basic_by_name("libc6").unwrap();
        assert_eq!(g.node(libc).prob, Some(0.01));
    }

    #[test]
    fn missing_server_data_is_error() {
        let err = build_fault_graph(
            &figure3_db(),
            &BuildSpec::all("x", vec!["S1".into(), "S404".into()]),
        )
        .unwrap_err();
        assert_eq!(err, BuildError::NoData("S404".into()));
    }

    #[test]
    fn empty_and_inconsistent_specs_rejected() {
        let db = figure3_db();
        assert_eq!(
            build_fault_graph(&db, &BuildSpec::all("x", vec![])).unwrap_err(),
            BuildError::NoServers
        );
        let bad = BuildSpec {
            needed_alive: 3,
            ..BuildSpec::all("x", vec!["S1".into(), "S2".into()])
        };
        assert_eq!(
            build_fault_graph(&db, &bad).unwrap_err(),
            BuildError::BadRedundancy
        );
    }
}
