//! Component importance measures.
//!
//! The paper ranks *risk groups* by relative importance `Pr(C)/Pr(T)`
//! (§4.1.3). Classic fault-tree analysis also ranks individual
//! *components*, which tells an operator where hardening buys the most.
//! Both standard measures are computed exactly from the BDD:
//!
//! * **Birnbaum importance** `I_B(i) = Pr(T | i failed) − Pr(T | i up)` —
//!   how much component `i`'s state moves the outage probability,
//! * **Fussell–Vesely importance**
//!   `I_FV(i) = 1 − Pr(T | p_i = 0) / Pr(T)` — the fraction of outage
//!   probability flowing through cut sets that contain `i`.

use std::collections::HashMap;

use indaas_graph::{FaultGraph, NodeId};

use crate::bdd::Bdd;

/// One component's importance scores.
#[derive(Clone, Debug)]
pub struct ComponentImportance {
    /// The basic event.
    pub component: NodeId,
    /// Component name.
    pub name: String,
    /// Birnbaum importance.
    pub birnbaum: f64,
    /// Fussell–Vesely importance.
    pub fussell_vesely: f64,
}

/// Computes both importance measures for every basic event, sorted by
/// descending Birnbaum importance (ties by name).
///
/// `default_prob` fills in for unweighted basic events, as everywhere in
/// this crate.
pub fn component_importance(
    bdd: &Bdd,
    graph: &FaultGraph,
    default_prob: f64,
) -> Vec<ComponentImportance> {
    let pr_top = bdd.top_probability(graph, default_prob);
    let mut out: Vec<ComponentImportance> = graph
        .basic_ids()
        .into_iter()
        .map(|id| {
            let mut force = HashMap::new();
            force.insert(id, 1.0);
            let with = bdd.top_probability_with(graph, default_prob, &force);
            force.insert(id, 0.0);
            let without = bdd.top_probability_with(graph, default_prob, &force);
            ComponentImportance {
                component: id,
                name: graph.node(id).name.clone(),
                birnbaum: with - without,
                fussell_vesely: if pr_top > 0.0 {
                    1.0 - without / pr_top
                } else {
                    0.0
                },
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.birnbaum
            .partial_cmp(&a.birnbaum)
            .expect("finite importances")
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_graph::detail::{fault_sets_to_graph, FaultSet};

    /// Figure 4(b): E1 = {A1: 0.1, A2: 0.2}, E2 = {A2: 0.2, A3: 0.3}.
    fn fig4b() -> (Bdd, FaultGraph) {
        let graph = fault_sets_to_graph(&[
            FaultSet::new("E1", [("A1", 0.1), ("A2", 0.2)]),
            FaultSet::new("E2", [("A2", 0.2), ("A3", 0.3)]),
        ])
        .unwrap();
        let bdd = Bdd::compile(&graph, 1 << 20);
        (bdd, graph)
    }

    #[test]
    fn shared_component_dominates() {
        let (bdd, graph) = fig4b();
        let imp = component_importance(&bdd, &graph, 0.0);
        // A2 is the shared single point of failure: top on both measures.
        assert_eq!(imp[0].name, "A2 fails");
        assert!(imp[0].birnbaum > imp[1].birnbaum);
        for c in &imp {
            assert!((0.0..=1.0 + 1e-12).contains(&c.birnbaum), "{c:?}");
            assert!((0.0..=1.0 + 1e-12).contains(&c.fussell_vesely), "{c:?}");
        }
    }

    #[test]
    fn fig4b_birnbaum_analytic() {
        // Pr(T) = p2 + p1·p3 − p1·p2·p3.
        // ∂/∂p2 = 1 − p1·p3 = 1 − 0.03 = 0.97.
        let (bdd, graph) = fig4b();
        let imp = component_importance(&bdd, &graph, 0.0);
        let a2 = imp.iter().find(|c| c.name == "A2 fails").unwrap();
        assert!((a2.birnbaum - 0.97).abs() < 1e-12, "got {}", a2.birnbaum);
        // ∂/∂p1 = p3 − p2·p3 = 0.3·0.8 = 0.24.
        let a1 = imp.iter().find(|c| c.name == "A1 fails").unwrap();
        assert!((a1.birnbaum - 0.24).abs() < 1e-12, "got {}", a1.birnbaum);
    }

    #[test]
    fn fussell_vesely_of_shared_component() {
        // FV(A2) = 1 − Pr(T | p2 = 0)/Pr(T) = 1 − 0.03/0.224.
        let (bdd, graph) = fig4b();
        let imp = component_importance(&bdd, &graph, 0.0);
        let a2 = imp.iter().find(|c| c.name == "A2 fails").unwrap();
        let expected = 1.0 - 0.03 / 0.224;
        assert!((a2.fussell_vesely - expected).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_component_scores_zero() {
        // A component whose failure can never reach the top event.
        use indaas_graph::{FaultGraphBuilder, Gate};
        let mut b = FaultGraphBuilder::new();
        let x = b.basic("x", Some(0.5));
        let y = b.basic("y", Some(0.5));
        let live = b.gate("live", Gate::Or, vec![x]);
        let dead = b.gate("dead", Gate::And, vec![y, x]);
        let top = b.gate("top", Gate::Or, vec![live, dead]);
        let graph = b.build(top).unwrap();
        let bdd = Bdd::compile(&graph, 1 << 20);
        let imp = component_importance(&bdd, &graph, 0.0);
        // y only matters through "dead", which is subsumed by "live" (x
        // alone fails the top): Birnbaum of y must be 0.
        let yv = imp.iter().find(|c| c.name == "y").unwrap();
        assert!(yv.birnbaum.abs() < 1e-12);
        assert!(yv.fussell_vesely.abs() < 1e-12);
    }
}
