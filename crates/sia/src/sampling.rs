//! The failure sampling risk-group algorithm (§4.1.2).
//!
//! Each sampling round flips a coin per basic event, evaluates the fault
//! graph bottom-up, and — if the top event failed — records the failed set
//! as a risk group. Two refinements over the paper's plain description:
//!
//! * each witness is *greedily minimized* (members are dropped one at a
//!   time while the top event keeps failing), so every reported group is a
//!   genuine minimal RG and the "% of minimal RGs detected" metric of
//!   Figure 7 is directly measurable;
//! * rounds can be spread across threads, each with an independent seeded
//!   RNG, merging the (deduplicated) findings at the end.
//!
//! The algorithm stays linear per round but is non-deterministic and may
//! miss RGs; Figure 7's experiments quantify that accuracy/time trade-off.

use indaas_graph::{CancelToken, Cancelled, FaultGraph, NodeId};
use rand::{Rng, SeedableRng};

use crate::riskgroup::{RgFamily, RiskGroup};

/// Configuration for failure sampling.
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Number of sampling rounds (the paper sweeps 10³–10⁷).
    pub rounds: u64,
    /// Per-event failure probability for the coin flip. The paper flips
    /// fair coins; lower values bias sampling toward small risk groups.
    pub fail_prob: f64,
    /// RNG seed (rounds are reproducible given the seed and thread count).
    pub seed: u64,
    /// Worker threads (1 = fully deterministic single-threaded run).
    pub threads: usize,
    /// Greedily minimize each failing witness into a minimal RG.
    pub minimize: bool,
    /// Weight coin flips by each basic event's failure probability instead
    /// of the uniform `fail_prob` (events without a probability fall back
    /// to `fail_prob`). Biases rounds toward *likely* risk groups — the
    /// importance-sampling refinement in the spirit of the SAT-counting
    /// methods the paper cites [67].
    pub weighted: bool,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            rounds: 10_000,
            fail_prob: 0.5,
            seed: 0,
            threads: 1,
            minimize: true,
            weighted: false,
        }
    }
}

impl SamplingConfig {
    /// Convenience constructor for the common case.
    pub fn with_rounds(rounds: u64) -> Self {
        SamplingConfig {
            rounds,
            ..Self::default()
        }
    }
}

/// Runs failure sampling and returns the (deduplicated, minimized) family
/// of risk groups discovered.
///
/// # Panics
///
/// Panics if `fail_prob` is outside `(0, 1)` or `threads` is zero.
pub fn failure_sampling(graph: &FaultGraph, config: &SamplingConfig) -> RgFamily {
    failure_sampling_cancellable(graph, config, &CancelToken::default())
        .expect("default token never cancels")
}

/// [`failure_sampling`] with cooperative cancellation: every worker polls
/// the token once per [`CANCEL_POLL_ROUNDS`] rounds, so multi-threaded
/// jobs unwind promptly on cancel or deadline.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token trips mid-run.
///
/// # Panics
///
/// Panics if `fail_prob` is outside `(0, 1)` or `threads` is zero.
pub fn failure_sampling_cancellable(
    graph: &FaultGraph,
    config: &SamplingConfig,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    assert!(
        config.fail_prob > 0.0 && config.fail_prob < 1.0,
        "fail_prob must be in (0, 1)"
    );
    assert!(config.threads >= 1, "need at least one thread");

    if config.threads == 1 {
        return sample_worker(graph, config.rounds, config.seed, config, token);
    }
    let per = config.rounds / config.threads as u64;
    let extra = config.rounds % config.threads as u64;
    let mut out = RgFamily::new();
    let mut cancelled = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..config.threads {
            let rounds = per + u64::from((t as u64) < extra);
            let seed = config
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1));
            handles.push(scope.spawn(move || sample_worker(graph, rounds, seed, config, token)));
        }
        for h in handles {
            match h.join().expect("sampling worker panicked") {
                Ok(fam) => out.merge(fam),
                Err(c) => cancelled = Some(c),
            }
        }
    });
    match cancelled {
        Some(c) => Err(c),
        None => Ok(out),
    }
}

/// How many sampling rounds run between cancellation polls.
pub const CANCEL_POLL_ROUNDS: u64 = 128;

fn sample_worker(
    graph: &FaultGraph,
    rounds: u64,
    seed: u64,
    config: &SamplingConfig,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    if config.minimize {
        sample_worker_lazy(graph, rounds, seed, config, token)
    } else {
        sample_worker_dense(graph, rounds, seed, config, token)
    }
}

/// The paper's plain algorithm: full per-round assignment and bottom-up
/// evaluation; failing rounds report the entire failed set as an RG.
fn sample_worker_dense(
    graph: &FaultGraph,
    rounds: u64,
    seed: u64,
    config: &SamplingConfig,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let plan = graph.eval_plan();
    let basic = graph.basic_ids();
    let n = graph.len();
    let mut assignment = vec![false; n];
    let mut state = vec![false; n];
    let mut fam = RgFamily::new();
    let thresholds = per_basic_thresholds(graph, config);

    for round in 0..rounds {
        if round % CANCEL_POLL_ROUNDS == 0 {
            token.check()?;
        }
        assignment.iter_mut().for_each(|b| *b = false);
        let mut failed: Vec<NodeId> = Vec::new();
        for &id in &basic {
            if rng.next_u64() <= thresholds[id as usize] {
                assignment[id as usize] = true;
                failed.push(id);
            }
        }
        if failed.is_empty() {
            continue;
        }
        plan.evaluate_into(graph, &assignment, &mut state);
        if state[graph.top() as usize] {
            fam.insert(RiskGroup::new(failed));
        }
    }
    Ok(fam)
}

/// The minimizing variant, built on a lazy short-circuit evaluator: coin
/// flips are drawn on demand for the basics the evaluation actually
/// touches, gates short-circuit (an AND over hundreds of redundant paths
/// stops at the first healthy one), and each failing round is shrunk to a
/// genuine minimal RG. On the paper's topology-C-scale graphs this is two
/// orders of magnitude faster per round than dense evaluation.
fn sample_worker_lazy(
    graph: &FaultGraph,
    rounds: u64,
    seed: u64,
    config: &SamplingConfig,
    token: &CancelToken,
) -> Result<RgFamily, Cancelled> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut eval = LazyEval::new(graph);
    let mut fam = RgFamily::new();
    let thresholds = per_basic_thresholds(graph, config);
    let mut kept_mask = vec![false; graph.len()];

    for round in 0..rounds {
        if round % CANCEL_POLL_ROUNDS == 0 {
            token.check()?;
        }
        // Random round: basics fail by coin flip, drawn lazily.
        eval.next_round();
        if !eval.value(
            graph.top(),
            &mut |id, rng: &mut rand::rngs::StdRng| rng.next_u64() <= thresholds[id as usize],
            &mut rng,
        ) {
            continue;
        }
        // Extract a small failing witness by descending through failing
        // gates (random failing children for OR/k-of-n gates — different
        // rounds minimize toward *different* minimal RGs).
        let witness = eval.extract_witness(&mut rng);

        // Greedy shrink against the sparse assignment "exactly `kept`".
        let mut kept = witness;
        for i in (1..kept.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            kept.swap(i, j);
        }
        for &id in &kept {
            kept_mask[id as usize] = true;
        }
        let mut i = 0;
        while i < kept.len() {
            let id = kept[i];
            kept_mask[id as usize] = false;
            eval.next_round();
            let still_fails = eval.value(
                graph.top(),
                &mut |b, _: &mut rand::rngs::StdRng| kept_mask[b as usize],
                &mut rng,
            );
            if still_fails {
                kept.swap_remove(i);
            } else {
                kept_mask[id as usize] = true;
                i += 1;
            }
        }
        for &id in &kept {
            kept_mask[id as usize] = false;
        }
        fam.insert(RiskGroup::new(kept));
    }
    Ok(fam)
}

/// Per-basic-event coin-flip thresholds: uniform `fail_prob`, or the
/// node's own probability in weighted mode.
fn per_basic_thresholds(graph: &FaultGraph, config: &SamplingConfig) -> Vec<u64> {
    let uniform = (config.fail_prob * u64::MAX as f64) as u64;
    graph
        .nodes()
        .iter()
        .map(|node| {
            if config.weighted {
                match node.prob {
                    Some(p) => (p * u64::MAX as f64) as u64,
                    None => uniform,
                }
            } else {
                uniform
            }
        })
        .collect()
}

/// A stamped, memoizing, short-circuiting fault-graph evaluator.
///
/// `next_round` invalidates all memoized values in O(1); `value` computes a
/// node's failure state on demand, querying basic events through a caller
/// closure (a lazy coin flip, or membership in a candidate set).
struct LazyEval<'g> {
    graph: &'g FaultGraph,
    stamp: Vec<u32>,
    val: Vec<bool>,
    cur: u32,
}

impl<'g> LazyEval<'g> {
    fn new(graph: &'g FaultGraph) -> Self {
        LazyEval {
            graph,
            stamp: vec![0; graph.len()],
            val: vec![false; graph.len()],
            cur: 0,
        }
    }

    fn next_round(&mut self) {
        if self.cur == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.cur = 0;
        }
        self.cur += 1;
    }

    fn value<R: Rng>(
        &mut self,
        id: NodeId,
        basic_value: &mut impl FnMut(NodeId, &mut R) -> bool,
        rng: &mut R,
    ) -> bool {
        let idx = id as usize;
        if self.stamp[idx] == self.cur {
            return self.val[idx];
        }
        let node = self.graph.node(id);
        let v = match node.gate {
            None => basic_value(id, rng),
            Some(gate) => {
                let total = node.children.len();
                let need = gate.threshold(total);
                let mut fails = 0usize;
                let mut healthy = 0usize;
                let mut result = false;
                // For gates that conclude before seeing every child
                // (OR / k-of-n), iterate in a lazily shuffled order:
                // short-circuiting in a fixed order would always conclude
                // from the *same* failing children, and the witness
                // extraction (which only follows memoized failures) would
                // keep rediscovering the same risk groups. AND gates need
                // every child to fail, so their order cannot bias anything
                // and they skip the shuffle.
                if need == total {
                    for &c in &node.children {
                        if self.value(c, basic_value, rng) {
                            fails += 1;
                        } else {
                            break; // One healthy child suffices for AND.
                        }
                    }
                    result = fails == total;
                } else if need == 1 && total > 64 {
                    // Large OR: probe random children (uniform over failing
                    // children, no copy of the child list); fall back to a
                    // full scan, which is mandatory anyway to conclude
                    // "healthy".
                    for _ in 0..16 {
                        let c = node.children[(rng.next_u64() % total as u64) as usize];
                        if self.value(c, basic_value, rng) {
                            result = true;
                            break;
                        }
                    }
                    if !result {
                        for &c in &node.children {
                            if self.value(c, basic_value, rng) {
                                result = true;
                                break;
                            }
                        }
                    }
                } else {
                    let mut order = node.children.clone();
                    for i in 0..total {
                        let j = i + (rng.next_u64() % (total - i) as u64) as usize;
                        order.swap(i, j);
                        if self.value(order[i], basic_value, rng) {
                            fails += 1;
                            if fails >= need {
                                result = true;
                                break;
                            }
                        } else {
                            healthy += 1;
                            // Not enough children left to reach the
                            // threshold.
                            if healthy > total - need {
                                break;
                            }
                        }
                    }
                }
                result
            }
        };
        self.stamp[idx] = self.cur;
        self.val[idx] = v;
        v
    }

    /// Descends from the (failing) top event, collecting a small basic-event
    /// set that suffices to fail it: all failing children of AND gates, one
    /// random failing child per OR gate, a random threshold-subset for
    /// k-of-n. Only memoized-failing children are followed; children never
    /// touched by the lazy evaluation this round are treated as healthy
    /// (sound: untouched children were not needed to conclude failure).
    fn extract_witness<R: Rng>(&mut self, rng: &mut R) -> Vec<NodeId> {
        let mut visited = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut stack = vec![self.graph.top()];
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            let node = self.graph.node(id);
            match node.gate {
                None => out.push(id),
                Some(gate) => {
                    let failing: Vec<NodeId> = node
                        .children
                        .iter()
                        .copied()
                        .filter(|&c| self.stamp[c as usize] == self.cur && self.val[c as usize])
                        .collect();
                    let need = gate.threshold(node.children.len()).min(failing.len());
                    if need >= failing.len() {
                        stack.extend_from_slice(&failing);
                    } else {
                        let mut picks = failing;
                        for i in 0..need {
                            let j = i + (rng.next_u64() % (picks.len() - i) as u64) as usize;
                            picks.swap(i, j);
                        }
                        stack.extend_from_slice(&picks[..need]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::{minimal_risk_groups, MinimalConfig};
    use indaas_graph::detail::{component_sets_to_graph, ComponentSet};

    fn fig4a_graph() -> FaultGraph {
        component_sets_to_graph(&[
            ComponentSet::new("E1", ["A1", "A2"]),
            ComponentSet::new("E2", ["A2", "A3"]),
        ])
        .unwrap()
    }

    #[test]
    fn sampling_finds_all_rgs_of_small_graph() {
        let graph = fig4a_graph();
        let fam = failure_sampling(&graph, &SamplingConfig::with_rounds(2000));
        let exact = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(fam.to_named(&graph), exact.to_named(&graph));
    }

    #[test]
    fn minimized_witnesses_are_minimal() {
        let graph = fig4a_graph();
        let fam = failure_sampling(&graph, &SamplingConfig::with_rounds(500));
        for g in fam.groups() {
            let mut assignment = vec![false; graph.len()];
            for &id in g.ids() {
                assignment[id as usize] = true;
            }
            assert!(graph.evaluate(&assignment));
            for &drop in g.ids() {
                let mut a = assignment.clone();
                a[drop as usize] = false;
                assert!(!graph.evaluate(&a), "sampled RG not minimal: {:?}", g);
            }
        }
    }

    #[test]
    fn unminimized_witnesses_may_be_larger_but_still_fail_top() {
        let graph = fig4a_graph();
        let config = SamplingConfig {
            rounds: 500,
            minimize: false,
            ..SamplingConfig::default()
        };
        let fam = failure_sampling(&graph, &config);
        for g in fam.groups() {
            let mut assignment = vec![false; graph.len()];
            for &id in g.ids() {
                assignment[id as usize] = true;
            }
            assert!(graph.evaluate(&assignment));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let graph = fig4a_graph();
        let config = SamplingConfig {
            rounds: 300,
            seed: 99,
            ..SamplingConfig::default()
        };
        let a = failure_sampling(&graph, &config);
        let b = failure_sampling(&graph, &config);
        assert_eq!(a.to_named(&graph), b.to_named(&graph));
    }

    #[test]
    fn multithreaded_matches_exact_on_small_graph() {
        let graph = fig4a_graph();
        let config = SamplingConfig {
            rounds: 4000,
            threads: 4,
            ..SamplingConfig::default()
        };
        let fam = failure_sampling(&graph, &config);
        let exact = minimal_risk_groups(&graph, &MinimalConfig::default());
        assert_eq!(fam.to_named(&graph), exact.to_named(&graph));
    }

    #[test]
    fn low_fail_prob_biases_toward_small_groups() {
        // With p = 0.05 and few rounds, the singleton {A2} should still be
        // found (it dominates the failure probability).
        let graph = fig4a_graph();
        let config = SamplingConfig {
            rounds: 3000,
            fail_prob: 0.05,
            ..SamplingConfig::default()
        };
        let fam = failure_sampling(&graph, &config);
        assert!(fam.to_named(&graph).contains(&vec!["A2".to_string()]));
    }

    #[test]
    fn weighted_sampling_biases_toward_probable_groups() {
        // Shared component "hot" has probability 0.5, everything else
        // 0.001: weighted sampling should find {hot} within few rounds.
        use indaas_graph::detail::{fault_sets_to_graph, FaultSet};
        let graph = fault_sets_to_graph(&[
            FaultSet::new("E1", [("hot", 0.5), ("a", 0.001)]),
            FaultSet::new("E2", [("hot", 0.5), ("b", 0.001)]),
        ])
        .unwrap();
        let config = SamplingConfig {
            rounds: 200,
            weighted: true,
            fail_prob: 0.001,
            ..SamplingConfig::default()
        };
        let fam = failure_sampling(&graph, &config);
        assert!(fam
            .to_named(&graph)
            .contains(&vec!["hot fails".to_string()]));
    }

    #[test]
    fn weighted_sampling_still_sound() {
        use crate::minimal::{minimal_risk_groups, MinimalConfig};
        use indaas_graph::detail::{fault_sets_to_graph, FaultSet};
        let graph = fault_sets_to_graph(&[
            FaultSet::new("E1", [("x", 0.3), ("y", 0.4)]),
            FaultSet::new("E2", [("y", 0.4), ("z", 0.2)]),
        ])
        .unwrap();
        let exact: std::collections::HashSet<_> =
            minimal_risk_groups(&graph, &MinimalConfig::default())
                .to_named(&graph)
                .into_iter()
                .collect();
        let fam = failure_sampling(
            &graph,
            &SamplingConfig {
                rounds: 2000,
                weighted: true,
                ..SamplingConfig::default()
            },
        );
        for g in fam.to_named(&graph) {
            assert!(exact.contains(&g), "weighted sample {g:?} not minimal");
        }
    }

    #[test]
    #[should_panic(expected = "fail_prob")]
    fn bad_fail_prob_rejected() {
        let graph = fig4a_graph();
        let config = SamplingConfig {
            fail_prob: 0.0,
            ..SamplingConfig::default()
        };
        let _ = failure_sampling(&graph, &config);
    }
}
