//! Fault-graph representation for INDaaS independence auditing.
//!
//! INDaaS adapts classic fault-tree analysis to a directed acyclic graph and
//! supports three levels of detail (§4.1.1, Figure 4):
//!
//! * **component-set** — each data source is a flat set of component names;
//!   only *shared* components matter ([`detail::ComponentSet`]),
//! * **fault-set** — components additionally carry failure probabilities
//!   ([`detail::FaultSet`]),
//! * **fault graph** — arbitrary AND/OR/k-of-n structure with internal
//!   redundancy ([`FaultGraph`]).
//!
//! A fault graph is evaluated bottom-up: basic events are assigned
//! fail/not-fail, gates propagate failures, and the *top event* represents
//! the failure of the whole redundancy deployment.
//!
//! # Examples
//!
//! Figure 4(a) of the paper — two systems E1 = {A1, A2}, E2 = {A2, A3}
//! deployed redundantly:
//!
//! ```
//! use indaas_graph::{FaultGraphBuilder, Gate};
//!
//! let mut b = FaultGraphBuilder::new();
//! let a1 = b.basic("A1", None);
//! let a2 = b.basic("A2", None);
//! let a3 = b.basic("A3", None);
//! let e1 = b.gate("E1 fails", Gate::Or, vec![a1, a2]);
//! let e2 = b.gate("E2 fails", Gate::Or, vec![a2, a3]);
//! let top = b.gate("deployment fails", Gate::And, vec![e1, e2]);
//! let g = b.build(top).unwrap();
//!
//! // A2 alone takes the deployment down: it is a shared dependency.
//! assert!(g.evaluate_named(&["A2"]).unwrap());
//! // A1 alone does not (E2 still up).
//! assert!(!g.evaluate_named(&["A1"]).unwrap());
//! ```

pub mod cancel;
pub mod compose;
pub mod detail;
pub mod dot;
mod graph;

pub use cancel::{CancelToken, Cancelled};
pub use compose::compose;
pub use detail::{ComponentSet, FaultSet};
pub use dot::to_dot;
pub use graph::{FaultGraph, FaultGraphBuilder, Gate, GraphError, Node, NodeId};
