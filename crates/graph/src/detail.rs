//! Component-set and fault-set levels of detail, and conversions between
//! levels (Figure 4 of the paper).
//!
//! An information-rich fault graph can be *downgraded* to the lower levels
//! by discarding structure; the lower levels can be *lifted* into the
//! canonical two-level "AND-of-ORs" fault graph for uniform auditing.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::graph::{FaultGraph, FaultGraphBuilder, Gate, GraphError};

/// Component-set level of detail: a data source and the flat set of
/// components it depends on. Only shared components matter here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentSet {
    /// Data-source name (e.g., "E1", "Cloud2").
    pub source: String,
    /// Names of components the source depends on.
    pub components: BTreeSet<String>,
}

impl ComponentSet {
    /// Creates a component-set from anything iterable.
    pub fn new(
        source: impl Into<String>,
        components: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ComponentSet {
            source: source.into(),
            components: components.into_iter().map(Into::into).collect(),
        }
    }

    /// Components shared with another set.
    pub fn shared_with(&self, other: &ComponentSet) -> BTreeSet<String> {
        self.components
            .intersection(&other.components)
            .cloned()
            .collect()
    }
}

/// Fault-set level of detail: components with failure probabilities.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Data-source name.
    pub source: String,
    /// Component name → failure probability over the auditing period.
    pub events: BTreeMap<String, f64>,
}

impl FaultSet {
    /// Creates a fault-set from `(component, probability)` pairs.
    pub fn new(
        source: impl Into<String>,
        events: impl IntoIterator<Item = (impl Into<String>, f64)>,
    ) -> Self {
        FaultSet {
            source: source.into(),
            events: events.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Drops the probabilities, downgrading to the component-set level.
    pub fn to_component_set(&self) -> ComponentSet {
        ComponentSet {
            source: self.source.clone(),
            components: self.events.keys().cloned().collect(),
        }
    }
}

/// Lifts component-sets into the canonical two-level "AND-of-ORs" fault
/// graph of Figure 4(a): the top AND expresses redundancy across sources,
/// each source an OR over its components. Shared components become shared
/// basic events automatically.
///
/// `needed` expresses n-of-m redundancy: the deployment survives while at
/// least `needed` of the `m` sources are alive, so the top gate fails once
/// `m - needed + 1` sources have failed. The paper's default — all sources
/// are full replicas, service dies only when every replica dies — is
/// `needed = 1`, which yields the plain top-level AND of Figure 4(a) and is
/// what [`component_sets_to_graph`] provides.
///
/// # Errors
///
/// Returns a [`GraphError`] if `sets` is empty, `needed` is zero or exceeds
/// the number of sources, or any component set is empty.
pub fn component_sets_to_graph_n_of_m(
    sets: &[ComponentSet],
    needed: usize,
) -> Result<FaultGraph, GraphError> {
    if sets.is_empty() || needed == 0 || needed > sets.len() {
        return Err(GraphError::BadThreshold("redundancy deployment".into()));
    }
    let mut b = FaultGraphBuilder::new();
    let mut source_events = Vec::with_capacity(sets.len());
    for set in sets {
        let comps: Vec<_> = set
            .components
            .iter()
            .map(|c| b.basic(c.clone(), None))
            .collect();
        if comps.is_empty() {
            return Err(GraphError::EmptyGate(set.source.clone()));
        }
        source_events.push(b.gate(format!("{} fails", set.source), Gate::Or, comps));
    }
    // Deployment fails once (m - needed + 1) sources fail.
    let fail_threshold = (sets.len() - needed + 1) as u32;
    let gate = if fail_threshold == sets.len() as u32 {
        Gate::And
    } else {
        Gate::KofN(fail_threshold)
    };
    let top = b.gate("deployment fails", gate, source_events);
    b.build(top)
}

/// Lifts component-sets with all sources acting as replicas (Figure 4(a)):
/// the deployment fails only when every source fails.
pub fn component_sets_to_graph(sets: &[ComponentSet]) -> Result<FaultGraph, GraphError> {
    component_sets_to_graph_n_of_m(sets, 1)
}

/// Lifts fault-sets into the two-level graph of Figure 4(b), carrying the
/// failure probabilities onto the basic events.
///
/// # Errors
///
/// As [`component_sets_to_graph_n_of_m`]; additionally out-of-range
/// probabilities are rejected at build time.
pub fn fault_sets_to_graph(sets: &[FaultSet]) -> Result<FaultGraph, GraphError> {
    if sets.is_empty() {
        return Err(GraphError::BadThreshold("redundancy deployment".into()));
    }
    let mut b = FaultGraphBuilder::new();
    let mut source_events = Vec::with_capacity(sets.len());
    for set in sets {
        let comps: Vec<_> = set
            .events
            .iter()
            .map(|(c, &p)| b.basic(format!("{c} fails"), Some(p)))
            .collect();
        if comps.is_empty() {
            return Err(GraphError::EmptyGate(set.source.clone()));
        }
        source_events.push(b.gate(format!("{} fails", set.source), Gate::Or, comps));
    }
    let top = b.gate("deployment fails", Gate::And, source_events);
    b.build(top)
}

impl FaultGraph {
    /// Downgrades to the component-set level: for each child of the top
    /// event, the set of basic components reachable beneath it. (When the
    /// top event's children are the data sources — the shape produced by the
    /// SIA builder — this matches the paper's notion exactly.)
    pub fn to_component_sets(&self) -> Vec<ComponentSet> {
        let top = self.node(self.top());
        top.children
            .iter()
            .map(|&child| {
                let mut comps = BTreeSet::new();
                let mut stack = vec![child];
                let mut seen = vec![false; self.len()];
                while let Some(id) = stack.pop() {
                    if std::mem::replace(&mut seen[id as usize], true) {
                        continue;
                    }
                    let node = self.node(id);
                    if node.is_basic() {
                        comps.insert(node.name.clone());
                    }
                    stack.extend_from_slice(&node.children);
                }
                ComponentSet {
                    source: self.node(child).name.clone(),
                    components: comps,
                }
            })
            .collect()
    }

    /// Downgrades to the fault-set level, keeping per-component
    /// probabilities; components lacking a probability are assigned the
    /// provided `default_prob`.
    pub fn to_fault_sets(&self, default_prob: f64) -> Vec<FaultSet> {
        self.to_component_sets()
            .into_iter()
            .map(|cs| {
                let events = cs
                    .components
                    .into_iter()
                    .map(|name| {
                        let p = self
                            .basic_by_name(&name)
                            .and_then(|id| self.node(id).prob)
                            .unwrap_or(default_prob);
                        (name, p)
                    })
                    .collect();
                FaultSet {
                    source: cs.source,
                    events,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4a_sets() -> Vec<ComponentSet> {
        vec![
            ComponentSet::new("E1", ["A1", "A2"]),
            ComponentSet::new("E2", ["A2", "A3"]),
        ]
    }

    #[test]
    fn fig4a_shared_component_found() {
        let sets = fig4a_sets();
        let shared = sets[0].shared_with(&sets[1]);
        assert_eq!(shared, BTreeSet::from(["A2".to_string()]));
    }

    #[test]
    fn fig4a_lift_semantics() {
        let g = component_sets_to_graph(&fig4a_sets()).unwrap();
        // A2 is shared: alone it kills the deployment.
        assert!(g.evaluate_named(&["A2"]).unwrap());
        // A1 + A3 kills both sources.
        assert!(g.evaluate_named(&["A1", "A3"]).unwrap());
        // A1 alone leaves E2 alive.
        assert!(!g.evaluate_named(&["A1"]).unwrap());
        assert_eq!(g.num_basic(), 3, "A2 must be a single shared node");
    }

    #[test]
    fn n_of_m_lift() {
        // 3 sources, need 2 alive: deployment fails when 2 fail.
        let sets = vec![
            ComponentSet::new("E1", ["A"]),
            ComponentSet::new("E2", ["B"]),
            ComponentSet::new("E3", ["C"]),
        ];
        let g = component_sets_to_graph_n_of_m(&sets, 2).unwrap();
        assert!(!g.evaluate_named(&["A"]).unwrap());
        assert!(g.evaluate_named(&["A", "C"]).unwrap());
    }

    #[test]
    fn empty_or_bad_inputs_rejected() {
        assert!(component_sets_to_graph(&[]).is_err());
        let sets = fig4a_sets();
        assert!(component_sets_to_graph_n_of_m(&sets, 0).is_err());
        assert!(component_sets_to_graph_n_of_m(&sets, 3).is_err());
        let with_empty = vec![ComponentSet::new("E1", Vec::<String>::new())];
        assert!(component_sets_to_graph(&with_empty).is_err());
    }

    #[test]
    fn fault_set_lift_carries_probabilities() {
        // Figure 4(b): probabilities 0.1, 0.2, 0.3.
        let sets = vec![
            FaultSet::new("E1", [("A1", 0.1), ("A2", 0.2)]),
            FaultSet::new("E2", [("A2", 0.2), ("A3", 0.3)]),
        ];
        let g = fault_sets_to_graph(&sets).unwrap();
        let a2 = g.basic_by_name("A2 fails").unwrap();
        assert_eq!(g.node(a2).prob, Some(0.2));
        assert!(g.evaluate_named(&["A2 fails"]).unwrap());
    }

    #[test]
    fn downgrade_roundtrip() {
        let sets = fig4a_sets();
        let g = component_sets_to_graph(&sets).unwrap();
        let mut back = g.to_component_sets();
        // Source names gain a " fails" suffix in the graph; compare contents.
        back.sort_by(|a, b| a.source.cmp(&b.source));
        assert_eq!(back.len(), 2);
        assert_eq!(
            back[0].components,
            BTreeSet::from(["A1".to_string(), "A2".to_string()])
        );
        assert_eq!(
            back[1].components,
            BTreeSet::from(["A2".to_string(), "A3".to_string()])
        );
    }

    #[test]
    fn fault_set_downgrade_from_component_set() {
        let fs = FaultSet::new("E1", [("A1", 0.25)]);
        let cs = fs.to_component_set();
        assert!(cs.components.contains("A1"));
    }

    #[test]
    fn graph_to_fault_sets_uses_default_for_unweighted() {
        let g = component_sets_to_graph(&fig4a_sets()).unwrap();
        let fs = g.to_fault_sets(0.07);
        for set in &fs {
            for &p in set.events.values() {
                assert_eq!(p, 0.07);
            }
        }
    }
}
