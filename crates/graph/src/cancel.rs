//! Cooperative cancellation for long-running audit jobs.
//!
//! Risk-group computation is NP-hard in general; the paper reports
//! audits taking from milliseconds to 17 hours depending on topology.
//! A continuously-serving daemon therefore needs every algorithm to be
//! *cancellable*: the scheduler hands each job a [`CancelToken`]
//! (optionally carrying a deadline) and the inner loops of the
//! minimal-RG, sampling and BDD engines poll it at bounded intervals,
//! unwinding with [`Cancelled`] instead of burning a worker thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a job stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cancelled {
    /// [`CancelToken::cancel`] was called (client disconnect, shutdown).
    ByRequest,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cancelled::ByRequest => write!(f, "job cancelled"),
            Cancelled::DeadlineExceeded => write!(f, "job deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// Shared cancellation flag with an optional deadline.
///
/// Clones share the same flag: cancelling any clone cancels them all.
/// The default token can never be cancelled, which lets one-shot CLI
/// paths reuse the cancellable entry points for free.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// The reason this token is cancelled, if it is.
    pub fn state(&self) -> Option<Cancelled> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(Cancelled::ByRequest);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(Cancelled::DeadlineExceeded),
            _ => None,
        }
    }

    /// True if the token is cancelled or past its deadline.
    pub fn is_cancelled(&self) -> bool {
        self.state().is_some()
    }

    /// Errors with the cancellation reason, for `?` in job inner loops.
    ///
    /// # Errors
    ///
    /// Returns the [`Cancelled`] reason when the token has tripped.
    pub fn check(&self) -> Result<(), Cancelled> {
        match self.state() {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.check().unwrap();
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        assert_eq!(u.state(), Some(Cancelled::ByRequest));
        assert_eq!(u.check().unwrap_err(), Cancelled::ByRequest);
    }

    #[test]
    fn deadline_trips() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.state(), Some(Cancelled::DeadlineExceeded));
        // Explicit cancel wins over the deadline in reporting.
        t.cancel();
        assert_eq!(t.state(), Some(Cancelled::ByRequest));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }
}
