//! Composition of fault graphs across services.
//!
//! The paper (§4.1.1, and TR-1479) composes individual dependency graphs
//! collected from multiple services into aggregate graphs — e.g., EC2
//! instances that depend on EBS and ELB services each described by their own
//! fault graph. [`compose`] merges graphs under a new top gate, unifying
//! basic events by component name so that shared infrastructure appears once.

use std::collections::HashMap;

use crate::graph::{FaultGraph, FaultGraphBuilder, Gate, GraphError, NodeId};

/// Composes `parts` into one aggregate graph under a new top event with the
/// given `gate`.
///
/// Basic events with identical names are unified (this is the point of
/// composition: a router shared by two services becomes one node); all
/// gated events are copied. Each part contributes its old top event as one
/// child of the new top.
///
/// # Errors
///
/// Returns a [`GraphError`] if `parts` is empty or the gate threshold is
/// invalid for the number of parts.
pub fn compose(
    top_name: impl Into<String>,
    gate: Gate,
    parts: &[&FaultGraph],
) -> Result<FaultGraph, GraphError> {
    if parts.is_empty() {
        return Err(GraphError::EmptyGate(top_name.into()));
    }
    let mut b = FaultGraphBuilder::new();
    let mut part_tops = Vec::with_capacity(parts.len());
    for part in parts {
        let mapping = copy_into(&mut b, part);
        part_tops.push(mapping[&part.top()]);
    }
    let top = b.gate(top_name, gate, part_tops);
    b.build(top)
}

/// Copies every node of `src` into the builder, returning old→new id map.
/// Basic events are unified by name (builder semantics); gated events are
/// always freshly created.
fn copy_into(b: &mut FaultGraphBuilder, src: &FaultGraph) -> HashMap<NodeId, NodeId> {
    let order = src.topo_order().expect("validated graphs are acyclic");
    let mut map = HashMap::with_capacity(src.len());
    for id in order {
        let node = src.node(id);
        let new_id = match node.gate {
            None => b.basic(node.name.clone(), node.prob),
            Some(gate) => {
                let children = node.children.iter().map(|c| map[c]).collect();
                b.gate(node.name.clone(), gate, children)
            }
        };
        map.insert(id, new_id);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detail::{component_sets_to_graph, ComponentSet};

    fn service(name: &str, comps: &[&str]) -> FaultGraph {
        component_sets_to_graph(&[ComponentSet::new(name, comps.to_vec())]).unwrap()
    }

    #[test]
    fn compose_unifies_shared_basics() {
        // Two services both depending on "power-7"; aggregate redundancy.
        let ebs = service("EBS", &["ebs-server-1", "power-7"]);
        let elb = service("ELB", &["elb-node-1", "power-7"]);
        let agg = compose("EC2 app", Gate::And, &[&ebs, &elb]).unwrap();
        // "power-7" must appear once.
        assert_eq!(
            agg.basic_ids()
                .iter()
                .filter(|&&id| agg.node(id).name == "power-7")
                .count(),
            1
        );
        // And it alone must take the aggregate down (common dependency).
        assert!(agg.evaluate_named(&["power-7"]).unwrap());
        // A failure local to one service does not.
        assert!(!agg.evaluate_named(&["ebs-server-1"]).unwrap());
    }

    #[test]
    fn compose_or_semantics() {
        // EC2 app needs BOTH services: aggregate under OR fails if either
        // service fails entirely.
        let s1 = service("storage", &["disk-a"]);
        let s2 = service("network", &["nic-b"]);
        let agg = compose("app", Gate::Or, &[&s1, &s2]).unwrap();
        assert!(agg.evaluate_named(&["disk-a"]).unwrap());
        assert!(agg.evaluate_named(&["nic-b"]).unwrap());
        assert!(!agg.evaluate_named(&[]).unwrap());
    }

    #[test]
    fn compose_preserves_probabilities() {
        let mut b = FaultGraphBuilder::new();
        let a = b.basic("a", Some(0.3));
        let t = b.gate("t", Gate::Or, vec![a]);
        let g1 = b.build(t).unwrap();
        let g2 = g1.clone();
        let agg = compose("agg", Gate::And, &[&g1, &g2]).unwrap();
        let id = agg.basic_by_name("a").unwrap();
        assert_eq!(agg.node(id).prob, Some(0.3));
    }

    #[test]
    fn compose_empty_rejected() {
        assert!(compose("x", Gate::And, &[]).is_err());
    }

    #[test]
    fn nested_composition() {
        let a = service("A", &["x"]);
        let b_ = service("B", &["y"]);
        let c = service("C", &["x", "z"]);
        let ab = compose("AB", Gate::And, &[&a, &b_]).unwrap();
        let abc = compose("ABC", Gate::And, &[&ab, &c]).unwrap();
        // x shared between A and C: one node.
        assert_eq!(
            abc.basic_ids()
                .iter()
                .filter(|&&id| abc.node(id).name == "x")
                .count(),
            1
        );
        // All three leaves down → aggregate down.
        assert!(abc.evaluate_named(&["x", "y", "z"]).unwrap());
    }
}
