//! Graphviz DOT export for fault graphs.
//!
//! Auditing reports point operators at risk groups; rendering the fault
//! graph makes the *structure* behind those groups inspectable. Basic
//! events render as boxes, gates as ellipses labeled with their logic, and
//! an optional highlight set (e.g., a risk group under discussion) is
//! filled red.

use std::collections::HashSet;

use crate::graph::{FaultGraph, Gate, NodeId};

/// Renders the graph in Graphviz DOT syntax.
///
/// `highlight` marks basic events (by id) to fill — typically the members
/// of a risk group from an auditing report.
pub fn to_dot(graph: &FaultGraph, highlight: &[NodeId]) -> String {
    let marked: HashSet<NodeId> = highlight.iter().copied().collect();
    let mut out = String::from("digraph fault_graph {\n  rankdir=BT;\n");
    for (i, node) in graph.nodes().iter().enumerate() {
        let id = i as NodeId;
        let label = escape(&node.name);
        let line = match node.gate {
            None => {
                let fill = if marked.contains(&id) {
                    ", style=filled, fillcolor=\"#ff8888\""
                } else {
                    ""
                };
                format!("  n{id} [shape=box, label=\"{label}\"{fill}];\n")
            }
            Some(gate) => {
                let logic = match gate {
                    Gate::Or => "OR".to_string(),
                    Gate::And => "AND".to_string(),
                    Gate::KofN(k) => format!("{k}-of-{}", node.children.len()),
                };
                let peripheries = if id == graph.top() { 2 } else { 1 };
                format!(
                    "  n{id} [shape=ellipse, peripheries={peripheries}, label=\"{label}\\n[{logic}]\"];\n"
                )
            }
        };
        out.push_str(&line);
        for &c in &node.children {
            out.push_str(&format!("  n{c} -> n{id};\n"));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detail::{component_sets_to_graph, ComponentSet};

    fn sample() -> FaultGraph {
        component_sets_to_graph(&[
            ComponentSet::new("E1", ["A1", "A2"]),
            ComponentSet::new("E2", ["A2", "A3"]),
        ])
        .unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, &[]);
        assert!(dot.starts_with("digraph fault_graph {"));
        assert!(dot.ends_with("}\n"));
        for node in g.nodes() {
            assert!(dot.contains(&escape(&node.name)), "missing {}", node.name);
        }
        // Edge count: one arrow per child link.
        let edges: usize = g.nodes().iter().map(|n| n.children.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn highlight_fills_basic_events() {
        let g = sample();
        let a2 = g.basic_by_name("A2").unwrap();
        let dot = to_dot(&g, &[a2]);
        assert_eq!(dot.matches("fillcolor").count(), 1);
    }

    #[test]
    fn top_event_double_circled_and_gates_labeled() {
        let g = sample();
        let dot = to_dot(&g, &[]);
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("[AND]"));
        assert!(dot.contains("[OR]"));
    }

    #[test]
    fn names_are_escaped() {
        use crate::graph::{FaultGraphBuilder, Gate};
        let mut b = FaultGraphBuilder::new();
        let x = b.basic("disk \"fast\"", None);
        let top = b.gate("t", Gate::Or, vec![x]);
        let g = b.build(top).unwrap();
        let dot = to_dot(&g, &[]);
        assert!(dot.contains("disk \\\"fast\\\""));
    }
}
