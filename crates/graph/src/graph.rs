//! The [`FaultGraph`] DAG, its builder and bottom-up evaluation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Index of a node within a [`FaultGraph`].
pub type NodeId = u32;

/// Logic gate connecting an event to its child events.
///
/// Failure semantics: a gated event fails when at least the gate's threshold
/// of its children have failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gate {
    /// Fails if *any* child fails (threshold 1).
    Or,
    /// Fails only if *all* children fail — this is how redundancy is
    /// expressed (the paper's top-level AND across data sources).
    And,
    /// Fails if at least `k` children fail. The paper's n-of-m redundancy
    /// (n of m replicas needed) maps to `KofN(m - n + 1)`: the deployment
    /// fails once `m - n + 1` replicas are down.
    KofN(u32),
}

impl Gate {
    /// The failure threshold for `n` children.
    pub fn threshold(&self, n: usize) -> usize {
        match self {
            Gate::Or => 1,
            Gate::And => n,
            Gate::KofN(k) => *k as usize,
        }
    }
}

/// A single event node in the fault graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable event name ("ToR1 fails", "libc6", ...). Basic-event
    /// names identify *components* and must be unique within a graph.
    pub name: String,
    /// `None` for basic events; the connecting gate otherwise.
    pub gate: Option<Gate>,
    /// Failure probability weight, if known (fault-set / weighted level).
    pub prob: Option<f64>,
    /// Child events (empty for basic events).
    pub children: Vec<NodeId>,
}

impl Node {
    /// Returns true if this is a basic event (no children, no gate).
    pub fn is_basic(&self) -> bool {
        self.gate.is_none()
    }
}

/// Errors arising while building or querying fault graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced node id does not exist.
    UnknownNode(NodeId),
    /// A referenced component name does not exist or is not basic.
    UnknownComponent(String),
    /// A gated event has no children.
    EmptyGate(String),
    /// A k-of-n gate with k = 0 or k > n.
    BadThreshold(String),
    /// A basic-event name occurs twice.
    DuplicateBasic(String),
    /// A probability outside [0, 1].
    BadProbability(String),
    /// The node set contains a cycle (only possible via composition).
    Cycle,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::UnknownComponent(n) => write!(f, "unknown component {n:?}"),
            GraphError::EmptyGate(n) => write!(f, "gate event {n:?} has no children"),
            GraphError::BadThreshold(n) => write!(f, "bad k-of-n threshold at {n:?}"),
            GraphError::DuplicateBasic(n) => write!(f, "duplicate basic event {n:?}"),
            GraphError::BadProbability(n) => write!(f, "probability out of range at {n:?}"),
            GraphError::Cycle => write!(f, "fault graph contains a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`FaultGraph`].
///
/// Children must be created before their parents, which makes the result a
/// DAG by construction.
#[derive(Default)]
pub struct FaultGraphBuilder {
    nodes: Vec<Node>,
    basic_names: HashMap<String, NodeId>,
}

impl FaultGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a basic event (a component failure), returning its id.
    ///
    /// Adding the same name twice returns the existing id, so collectors can
    /// feed overlapping dependency data without bookkeeping; a differing
    /// probability on re-add is ignored (first write wins).
    pub fn basic(&mut self, name: impl Into<String>, prob: Option<f64>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.basic_names.get(&name) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.basic_names.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            gate: None,
            prob,
            children: Vec::new(),
        });
        id
    }

    /// Adds a gated (intermediate or top) event, returning its id.
    pub fn gate(&mut self, name: impl Into<String>, gate: Gate, children: Vec<NodeId>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            name: name.into(),
            gate: Some(gate),
            prob: None,
            children,
        });
        id
    }

    /// Looks up a basic event id by component name.
    pub fn find_basic(&self, name: &str) -> Option<NodeId> {
        self.basic_names.get(name).copied()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes into a validated [`FaultGraph`] with `top` as the top event.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if any gate is empty, a threshold is invalid,
    /// a child id is out of range, or a probability is out of `[0, 1]`.
    pub fn build(self, top: NodeId) -> Result<FaultGraph, GraphError> {
        let graph = FaultGraph {
            nodes: self.nodes,
            top,
            basic_names: self.basic_names,
        };
        graph.validate()?;
        Ok(graph)
    }
}

/// A validated fault graph: a DAG of events with a designated top event.
///
/// Node ids are stable; basic events double as the *component universe* for
/// the component-set and fault-set levels of detail.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultGraph {
    nodes: Vec<Node>,
    top: NodeId,
    basic_names: HashMap<String, NodeId>,
}

impl FaultGraph {
    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this graph never are).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// The top event id.
    pub fn top(&self) -> NodeId {
        self.top
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never the case for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all basic events, in id order.
    pub fn basic_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].is_basic())
            .collect()
    }

    /// Number of basic events.
    pub fn num_basic(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_basic()).count()
    }

    /// Looks up a basic event by component name.
    pub fn basic_by_name(&self, name: &str) -> Option<NodeId> {
        self.basic_names.get(name).copied()
    }

    /// Validates structural invariants; called by the builder and after
    /// composition.
    pub(crate) fn validate(&self) -> Result<(), GraphError> {
        let n = self.nodes.len() as NodeId;
        if self.top >= n {
            return Err(GraphError::UnknownNode(self.top));
        }
        let mut seen_basic: HashMap<&str, ()> = HashMap::new();
        for node in &self.nodes {
            match node.gate {
                None => {
                    if seen_basic.insert(&node.name, ()).is_some() {
                        return Err(GraphError::DuplicateBasic(node.name.clone()));
                    }
                    if !node.children.is_empty() {
                        return Err(GraphError::BadThreshold(node.name.clone()));
                    }
                }
                Some(gate) => {
                    if node.children.is_empty() {
                        return Err(GraphError::EmptyGate(node.name.clone()));
                    }
                    let t = gate.threshold(node.children.len());
                    if t == 0 || t > node.children.len() {
                        return Err(GraphError::BadThreshold(node.name.clone()));
                    }
                }
            }
            if let Some(p) = node.prob {
                if !(0.0..=1.0).contains(&p) || p.is_nan() {
                    return Err(GraphError::BadProbability(node.name.clone()));
                }
            }
            for &c in &node.children {
                if c >= n {
                    return Err(GraphError::UnknownNode(c));
                }
            }
        }
        // Acyclicity via Kahn's algorithm (composition can produce cycles).
        if self.topo_order().is_none() {
            return Err(GraphError::Cycle);
        }
        Ok(())
    }

    /// Topological order (children before parents), or `None` on a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut out_deg: Vec<u32> = self.nodes.iter().map(|x| x.children.len() as u32).collect();
        let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                parents[c as usize].push(id as NodeId);
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<NodeId> = (0..n as NodeId)
            .filter(|&i| out_deg[i as usize] == 0)
            .collect();
        while let Some(id) = queue.pop() {
            order.push(id);
            for &p in &parents[id as usize] {
                out_deg[p as usize] -= 1;
                if out_deg[p as usize] == 0 {
                    queue.push(p);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Evaluates the graph bottom-up for a failure assignment over *all*
    /// nodes indexed by id (only basic entries are read). Returns per-node
    /// failure states.
    pub fn evaluate_all(&self, basic_failed: &[bool]) -> Vec<bool> {
        debug_assert_eq!(basic_failed.len(), self.nodes.len());
        let order = self.topo_order().expect("validated graphs are acyclic");
        let mut state = vec![false; self.nodes.len()];
        for id in order {
            let node = &self.nodes[id as usize];
            state[id as usize] = match node.gate {
                None => basic_failed[id as usize],
                Some(gate) => {
                    let failed = node.children.iter().filter(|&&c| state[c as usize]).count();
                    failed >= gate.threshold(node.children.len())
                }
            };
        }
        state
    }

    /// Evaluates whether the top event fails under a failure assignment.
    pub fn evaluate(&self, basic_failed: &[bool]) -> bool {
        self.evaluate_all(basic_failed)[self.top as usize]
    }

    /// Evaluates with the named basic events failed and all others healthy.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownComponent`] for names that are not basic
    /// events of this graph.
    pub fn evaluate_named(&self, failed: &[&str]) -> Result<bool, GraphError> {
        let mut assignment = vec![false; self.nodes.len()];
        for &name in failed {
            let id = self
                .basic_by_name(name)
                .ok_or_else(|| GraphError::UnknownComponent(name.to_string()))?;
            assignment[id as usize] = true;
        }
        Ok(self.evaluate(&assignment))
    }

    /// A precomputed evaluation plan for hot loops (failure sampling runs
    /// millions of rounds; recomputing the topological order each time would
    /// dominate). See [`EvalPlan`].
    pub fn eval_plan(&self) -> EvalPlan {
        EvalPlan {
            order: self.topo_order().expect("validated graphs are acyclic"),
        }
    }
}

/// Reusable evaluation order for repeated [`FaultGraph::evaluate`]-style
/// calls over the same graph.
pub struct EvalPlan {
    order: Vec<NodeId>,
}

impl EvalPlan {
    /// Evaluates all node states into `state` (scratch buffer reused across
    /// calls); `basic_failed` supplies the basic-event assignment.
    pub fn evaluate_into(&self, graph: &FaultGraph, basic_failed: &[bool], state: &mut [bool]) {
        for &id in &self.order {
            let node = &graph.nodes[id as usize];
            state[id as usize] = match node.gate {
                None => basic_failed[id as usize],
                Some(gate) => {
                    let mut failed = 0usize;
                    for &c in &node.children {
                        failed += state[c as usize] as usize;
                    }
                    failed >= gate.threshold(node.children.len())
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4(c)-style graph: two servers, each OR(hw, net); net has
    /// redundant paths (AND); servers joined by top-level AND.
    fn sample_graph() -> FaultGraph {
        let mut b = FaultGraphBuilder::new();
        let tor = b.basic("ToR1", Some(0.1));
        let core1 = b.basic("Core1", Some(0.1));
        let core2 = b.basic("Core2", Some(0.1));
        let disk1 = b.basic("S1-disk", Some(0.05));
        let disk2 = b.basic("S2-disk", Some(0.05));
        let paths1 = b.gate("S1 paths", Gate::And, vec![core1, core2]);
        let net1 = b.gate("S1 net", Gate::Or, vec![tor, paths1]);
        let s1 = b.gate("S1 fails", Gate::Or, vec![net1, disk1]);
        let paths2 = b.gate("S2 paths", Gate::And, vec![core1, core2]);
        let net2 = b.gate("S2 net", Gate::Or, vec![tor, paths2]);
        let s2 = b.gate("S2 fails", Gate::Or, vec![net2, disk2]);
        let top = b.gate("deployment", Gate::And, vec![s1, s2]);
        b.build(top).unwrap()
    }

    #[test]
    fn shared_tor_is_single_point_of_failure() {
        let g = sample_graph();
        assert!(g.evaluate_named(&["ToR1"]).unwrap());
    }

    #[test]
    fn redundant_cores_require_both() {
        let g = sample_graph();
        assert!(!g.evaluate_named(&["Core1"]).unwrap());
        assert!(!g.evaluate_named(&["Core2"]).unwrap());
        assert!(g.evaluate_named(&["Core1", "Core2"]).unwrap());
    }

    #[test]
    fn independent_disks_require_both() {
        let g = sample_graph();
        assert!(!g.evaluate_named(&["S1-disk"]).unwrap());
        assert!(g.evaluate_named(&["S1-disk", "S2-disk"]).unwrap());
        // Mixed: disk on one server plus full network loss on the other.
        assert!(g.evaluate_named(&["S1-disk", "Core1", "Core2"]).unwrap());
    }

    #[test]
    fn no_failures_no_outage() {
        let g = sample_graph();
        assert!(!g.evaluate_named(&[]).unwrap());
    }

    #[test]
    fn unknown_component_is_error() {
        let g = sample_graph();
        assert_eq!(
            g.evaluate_named(&["nope"]),
            Err(GraphError::UnknownComponent("nope".into()))
        );
    }

    #[test]
    fn kofn_gate_thresholds() {
        // 2-of-3 redundancy: deployment fails when 2 replicas are down.
        let mut b = FaultGraphBuilder::new();
        let r1 = b.basic("r1", None);
        let r2 = b.basic("r2", None);
        let r3 = b.basic("r3", None);
        let top = b.gate("svc", Gate::KofN(2), vec![r1, r2, r3]);
        let g = b.build(top).unwrap();
        assert!(!g.evaluate_named(&["r1"]).unwrap());
        assert!(g.evaluate_named(&["r1", "r3"]).unwrap());
        assert!(g.evaluate_named(&["r1", "r2", "r3"]).unwrap());
    }

    #[test]
    fn duplicate_basic_names_are_shared() {
        let mut b = FaultGraphBuilder::new();
        let a = b.basic("shared-switch", None);
        let a2 = b.basic("shared-switch", None);
        assert_eq!(a, a2, "same component must map to the same node");
    }

    #[test]
    fn empty_gate_rejected() {
        let mut b = FaultGraphBuilder::new();
        let top = b.gate("bad", Gate::Or, vec![]);
        assert_eq!(
            b.build(top).unwrap_err(),
            GraphError::EmptyGate("bad".into())
        );
    }

    #[test]
    fn bad_threshold_rejected() {
        let mut b = FaultGraphBuilder::new();
        let a = b.basic("a", None);
        let top = b.gate("bad", Gate::KofN(2), vec![a]);
        assert!(matches!(b.build(top), Err(GraphError::BadThreshold(_))));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut b = FaultGraphBuilder::new();
        let a = b.basic("a", Some(1.5));
        let top = b.gate("t", Gate::Or, vec![a]);
        assert!(matches!(b.build(top), Err(GraphError::BadProbability(_))));
    }

    #[test]
    fn unknown_child_rejected() {
        let mut b = FaultGraphBuilder::new();
        let a = b.basic("a", None);
        let top = b.gate("t", Gate::Or, vec![a, 99]);
        assert_eq!(b.build(top).unwrap_err(), GraphError::UnknownNode(99));
    }

    #[test]
    fn topo_order_children_first() {
        let g = sample_graph();
        let order = g.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in g.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!(pos[&c] < pos[&(id as NodeId)], "child must precede parent");
            }
        }
    }

    #[test]
    fn eval_plan_matches_evaluate() {
        let g = sample_graph();
        let plan = g.eval_plan();
        let mut state = vec![false; g.len()];
        for pattern in 0u32..(1 << 5) {
            let mut basic = vec![false; g.len()];
            for (bit, &id) in g.basic_ids().iter().enumerate() {
                basic[id as usize] = pattern >> bit & 1 == 1;
            }
            plan.evaluate_into(&g, &basic, &mut state);
            assert_eq!(state[g.top() as usize], g.evaluate(&basic));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let g = sample_graph();
        let json = serde_json::to_string(&g).unwrap();
        let g2: FaultGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.top(), g.top());
        assert!(g2.evaluate_named(&["ToR1"]).unwrap());
    }
}
