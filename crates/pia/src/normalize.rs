//! Component normalization (§4.2.3).
//!
//! The same third-party component must map to the same identifier at every
//! cloud provider, or private set intersection would systematically
//! under-count shared dependencies. The paper normalizes two component
//! classes: third-party routing elements (identified by their public IP
//! addresses) and third-party software packages (identified by canonical
//! name plus version).

/// Normalizes one raw component identifier.
///
/// Rules, in order:
///
/// 1. a leading provider scope (`"Cloud2:..."`) is stripped — provider-local
///    qualifiers must not make shared components look distinct;
/// 2. IPv4 addresses (optionally with a port) are kept verbatim minus the
///    port — the address *is* the canonical router identity;
/// 3. everything else (package names, device names) is lowercased and
///    internal whitespace is collapsed to single dashes, so
///    `"OpenSSL 1.0.1f"` and `"openssl-1.0.1f"` agree.
pub fn normalize_component(raw: &str) -> String {
    let s = raw.trim();
    // Strip a provider scope like "Cloud3:" (single colon-separated prefix
    // with no dots, to avoid eating IPv4:port forms).
    let s = match s.split_once(':') {
        Some((prefix, rest))
            if !prefix.contains('.')
                && !prefix.is_empty()
                && !rest.is_empty()
                && !prefix.chars().all(|c| c.is_ascii_digit()) =>
        {
            rest
        }
        _ => s,
    };
    let s = s.trim();
    if let Some(ip) = as_ipv4(s) {
        return ip;
    }
    let mut out = String::with_capacity(s.len());
    let mut last_dash = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_dash && !out.is_empty() {
                out.push('-');
                last_dash = true;
            }
        } else {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Parses `a.b.c.d` or `a.b.c.d:port`, returning the canonical address.
fn as_ipv4(s: &str) -> Option<String> {
    let addr = s.split_once(':').map_or(s, |(a, p)| {
        if p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty() {
            a
        } else {
            s
        }
    });
    let octets: Vec<&str> = addr.split('.').collect();
    if octets.len() != 4 {
        return None;
    }
    for o in &octets {
        if o.is_empty() || o.len() > 3 || !o.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        if o.parse::<u32>().ok()? > 255 {
            return None;
        }
    }
    Some(addr.to_string())
}

/// Normalizes a whole component set, deduplicating post-normalization.
pub fn normalize_set<'a>(raw: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let mut out: Vec<String> = raw.into_iter().map(normalize_component).collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packages_lowercased_and_dashed() {
        assert_eq!(normalize_component("OpenSSL 1.0.1f"), "openssl-1.0.1f");
        assert_eq!(normalize_component("libc6-2.19"), "libc6-2.19");
        assert_eq!(
            normalize_component("  Erlang  Base 17.3 "),
            "erlang-base-17.3"
        );
    }

    #[test]
    fn ipv4_kept_verbatim() {
        assert_eq!(normalize_component("192.168.1.254"), "192.168.1.254");
        assert_eq!(normalize_component("8.8.8.8:443"), "8.8.8.8");
    }

    #[test]
    fn non_ips_are_not_mistaken() {
        assert_eq!(normalize_component("1.2.3"), "1.2.3");
        assert_eq!(normalize_component("999.1.1.1"), "999.1.1.1");
        assert_eq!(normalize_component("a.b.c.d"), "a.b.c.d");
    }

    #[test]
    fn provider_scope_stripped() {
        assert_eq!(normalize_component("Cloud2:libssl1.0.0"), "libssl1.0.0");
        assert_eq!(
            normalize_component("Cloud1:10.0.0.1"),
            "10.0.0.1",
            "scoped router IP must normalize to the bare IP"
        );
    }

    #[test]
    fn equal_components_collide_across_providers() {
        let a = normalize_component("Cloud1:OpenSSL 1.0.1f");
        let b = normalize_component("cloud2:openssl-1.0.1f");
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_set_dedups() {
        let set = normalize_set(["Libc6-2.19", "libc6-2.19", "zlib1g"]);
        assert_eq!(set, vec!["libc6-2.19".to_string(), "zlib1g".to_string()]);
    }
}
