//! "Trust but leave an audit trail" (§5.2 of the paper).
//!
//! Dishonest PIA participants could under-declare their component sets to
//! appear more independent. The paper's pragmatic countermeasure: each
//! provider saves and digitally signs the data it fed into the protocol,
//! and a specially-authorized meta-auditor can later verify the records —
//! a persistently dishonest participant risks eventually getting caught.
//!
//! [`AuditTrail`] implements the record-keeping side: a provider commits
//! to its (normalized) component set by signing a canonical digest, and
//! [`AuditTrail::meta_audit`] replays the commitment against data the
//! meta-auditor obtained (e.g., by subpoena or spot inspection of the
//! provider's infrastructure).

use indaas_crypto::rsa::{Signature, SigningKey, VerifyingKey};
use indaas_crypto::sha256;

/// One provider's signed commitment to a protocol input.
#[derive(Clone, Debug)]
pub struct SignedRecord {
    /// Provider name.
    pub provider: String,
    /// Protocol run identifier (the agent assigns one per audit).
    pub run_id: u64,
    /// Canonical digest of the normalized component set.
    pub digest: [u8; 32],
    /// The provider's signature over `run_id ‖ digest`.
    pub signature: Signature,
}

/// Errors a meta-audit can surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaAuditError {
    /// The signature does not verify — the record itself is forged or
    /// corrupted.
    BadSignature,
    /// The signature verifies but the committed digest does not match the
    /// data under inspection — the provider fed different data into the
    /// protocol than it now claims (or than reality shows).
    DigestMismatch,
}

impl std::fmt::Display for MetaAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaAuditError::BadSignature => write!(f, "signature verification failed"),
            MetaAuditError::DigestMismatch => {
                write!(f, "committed digest does not match inspected data")
            }
        }
    }
}

impl std::error::Error for MetaAuditError {}

/// Audit-trail helper bound to one provider's signing key.
pub struct AuditTrail {
    provider: String,
    key: SigningKey,
}

impl AuditTrail {
    /// Creates a trail writer for `provider`.
    pub fn new(provider: impl Into<String>, key: SigningKey) -> Self {
        AuditTrail {
            provider: provider.into(),
            key,
        }
    }

    /// The provider's public verification key (registered with the agent).
    pub fn verifying_key(&self) -> &VerifyingKey {
        self.key.verifying_key()
    }

    /// Commits to the component set used in protocol run `run_id`.
    ///
    /// The digest is order-independent: the set is sorted before hashing,
    /// so equivalent sets commit identically.
    pub fn commit(&self, run_id: u64, component_set: &[String]) -> SignedRecord {
        let digest = canonical_digest(component_set);
        let signature = self.key.sign(&message(run_id, &digest));
        SignedRecord {
            provider: self.provider.clone(),
            run_id,
            digest,
            signature,
        }
    }

    /// Meta-audit: verifies a record against independently obtained data.
    ///
    /// # Errors
    ///
    /// [`MetaAuditError::BadSignature`] if the record is forged;
    /// [`MetaAuditError::DigestMismatch`] if the provider committed to
    /// different data than inspected.
    pub fn meta_audit(
        record: &SignedRecord,
        key: &VerifyingKey,
        inspected_set: &[String],
    ) -> Result<(), MetaAuditError> {
        if !key.verify(&message(record.run_id, &record.digest), &record.signature) {
            return Err(MetaAuditError::BadSignature);
        }
        if canonical_digest(inspected_set) != record.digest {
            return Err(MetaAuditError::DigestMismatch);
        }
        Ok(())
    }
}

/// Order-independent digest of a component set.
fn canonical_digest(component_set: &[String]) -> [u8; 32] {
    let mut sorted: Vec<&String> = component_set.iter().collect();
    sorted.sort();
    sorted.dedup();
    let mut buf = Vec::new();
    for item in sorted {
        buf.extend_from_slice(&(item.len() as u32).to_be_bytes());
        buf.extend_from_slice(item.as_bytes());
    }
    sha256(&buf)
}

fn message(run_id: u64, digest: &[u8; 32]) -> Vec<u8> {
    let mut m = Vec::with_capacity(40);
    m.extend_from_slice(&run_id.to_be_bytes());
    m.extend_from_slice(digest);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn trail(name: &str, seed: u64) -> AuditTrail {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        AuditTrail::new(name, SigningKey::generate(512, &mut rng))
    }

    fn set(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn honest_provider_passes_meta_audit() {
        let t = trail("Cloud1", 1);
        let data = set(&["libc6", "openssl", "router-10.0.0.1"]);
        let record = t.commit(42, &data);
        assert_eq!(
            AuditTrail::meta_audit(&record, t.verifying_key(), &data),
            Ok(())
        );
    }

    #[test]
    fn commitment_is_order_independent() {
        let t = trail("Cloud1", 1);
        let record = t.commit(1, &set(&["b", "a", "c"]));
        assert_eq!(
            AuditTrail::meta_audit(&record, t.verifying_key(), &set(&["c", "a", "b"])),
            Ok(())
        );
    }

    #[test]
    fn under_declaring_provider_caught() {
        // The provider fed a subset into the protocol (to look more
        // independent) but inspection reveals the full set.
        let t = trail("ShadyCloud", 2);
        let declared = set(&["libc6"]);
        let actual = set(&["libc6", "openssl", "erlang-base"]);
        let record = t.commit(7, &declared);
        assert_eq!(
            AuditTrail::meta_audit(&record, t.verifying_key(), &actual),
            Err(MetaAuditError::DigestMismatch)
        );
    }

    #[test]
    fn forged_record_caught() {
        let honest = trail("Cloud1", 3);
        let imposter = trail("Cloud1", 4);
        let data = set(&["libc6"]);
        // The imposter signs with the wrong key.
        let record = imposter.commit(9, &data);
        assert_eq!(
            AuditTrail::meta_audit(&record, honest.verifying_key(), &data),
            Err(MetaAuditError::BadSignature)
        );
    }

    #[test]
    fn tampered_digest_caught() {
        let t = trail("Cloud1", 5);
        let data = set(&["libc6"]);
        let mut record = t.commit(11, &data);
        record.digest[0] ^= 1;
        assert_eq!(
            AuditTrail::meta_audit(&record, t.verifying_key(), &data),
            Err(MetaAuditError::BadSignature)
        );
    }
}
