//! P-SOP: private set-intersection cardinality over commutative encryption
//! (Vaidya & Clifton [58]; §4.2.2 and §4.2.4 of the paper).
//!
//! The k providers form a logical ring. Each provider:
//!
//! 1. disambiguates duplicates (`e‖1 … e‖t`), hashes every element into the
//!    shared group, encrypts with its own Pohlig–Hellman key, permutes, and
//!    sends the list to its ring successor;
//! 2. on receiving a list, adds its own encryption layer, permutes, and
//!    forwards — until every list carries all k layers;
//! 3. the fully-encrypted lists are sent to the auditing agent, who counts
//!    equal ciphertexts: equal plaintexts produce equal k-layer ciphertexts
//!    (commutativity), so the agent learns `|∩ᵢ Sᵢ|` and `|∪ᵢ Sᵢ|` and
//!    *nothing about the elements themselves*.
//!
//! The protocol runs on [`indaas_simnet::SimNetwork`]; Figure 8's bandwidth
//! numbers come straight from the network's byte counters.

use std::collections::HashMap;

use indaas_bigint::BigUint;
use indaas_crypto::{shuffle, CommutativeCipher};
use indaas_simnet::{SimNetwork, TrafficStats};
use rand::SeedableRng;

/// Configuration for a P-SOP run.
#[derive(Clone, Copy, Debug)]
pub struct PsopConfig {
    /// RNG seed for key generation and permutations.
    pub seed: u64,
    /// Treat inputs as multisets, applying the `e‖i` disambiguation.
    pub multiset: bool,
}

impl Default for PsopConfig {
    fn default() -> Self {
        PsopConfig {
            seed: 0x50_50,
            multiset: true,
        }
    }
}

/// Result of a P-SOP run.
#[derive(Clone, Debug)]
pub struct PsopOutcome {
    /// `|S₀ ∩ … ∩ S_{k−1}|` — elements present at every provider.
    pub intersection: usize,
    /// `|S₀ ∪ … ∪ S_{k−1}|` — distinct elements overall.
    pub union: usize,
    /// `intersection / union` (0 when the union is empty).
    pub jaccard: f64,
    /// Per-party traffic as measured on the simulated network.
    pub traffic: TrafficStats,
}

/// Runs P-SOP across `datasets` (one per provider; party `i` on the ring).
///
/// The network must have `k + 1` parties: `0..k` are providers, party `k`
/// is the auditing agent receiving the final lists.
///
/// # Panics
///
/// Panics if fewer than two datasets are supplied or the network is not
/// sized `k + 1`.
pub fn run_psop(
    datasets: &[Vec<String>],
    config: &PsopConfig,
    net: &mut SimNetwork,
) -> PsopOutcome {
    let k = datasets.len();
    assert!(k >= 2, "P-SOP needs at least two providers");
    assert_eq!(
        net.parties(),
        k + 1,
        "network must host k providers + agent"
    );
    let agent = k;

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let ciphers: Vec<CommutativeCipher> = (0..k)
        .map(|_| CommutativeCipher::generate(&mut rng))
        .collect();

    // Round 0: every party hashes + encrypts + permutes its own list and
    // sends it to its successor.
    for (i, data) in datasets.iter().enumerate() {
        let prepared = prepare(data, config.multiset);
        let mut cts: Vec<BigUint> = prepared
            .iter()
            .map(|e| ciphers[i].encrypt(&ciphers[i].hash_to_group(e.as_bytes())))
            .collect();
        shuffle(&mut cts, &mut rng);
        net.send(i, (i + 1) % k, encode(&ciphers[i], &cts));
    }

    // Rounds 1..k-1: each party re-encrypts what it receives and forwards.
    for _round in 1..k {
        for (i, cipher) in ciphers.iter().enumerate() {
            let msg = net.recv_expect(i);
            let mut cts = decode(cipher, &msg.payload);
            for c in &mut cts {
                *c = cipher.encrypt(c);
            }
            shuffle(&mut cts, &mut rng);
            net.send(i, (i + 1) % k, encode(cipher, &cts));
        }
    }

    // Final hop: each party receives its own fully-encrypted list back and
    // shares it with the auditing agent.
    for i in 0..k {
        let msg = net.recv_expect(i);
        net.send(i, agent, msg.payload);
    }

    // The agent counts common and distinct ciphertexts.
    let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
    for _ in 0..k {
        let msg = net.recv_expect(agent);
        for chunk in msg.payload.chunks(CommutativeCipher::ELEMENT_BYTES) {
            *counts.entry(chunk.to_vec()).or_insert(0) += 1;
        }
    }
    let union = counts.len();
    let intersection = counts.values().filter(|&&c| c == k).count();
    PsopOutcome {
        intersection,
        union,
        jaccard: if union == 0 {
            0.0
        } else {
            intersection as f64 / union as f64
        },
        traffic: net.stats().clone(),
    }
}

/// Duplicate disambiguation: element `e` occurring `t` times becomes
/// `e‖1 … e‖t` (sets pass through unchanged apart from the `‖1` tag).
fn prepare(data: &[String], multiset: bool) -> Vec<String> {
    if !multiset {
        return data.to_vec();
    }
    let mut seen: HashMap<&str, usize> = HashMap::new();
    data.iter()
        .map(|e| {
            let n = seen.entry(e.as_str()).or_insert(0);
            *n += 1;
            format!("{e}\u{2016}{n}")
        })
        .collect()
}

fn encode(cipher: &CommutativeCipher, cts: &[BigUint]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cts.len() * CommutativeCipher::ELEMENT_BYTES);
    for c in cts {
        out.extend_from_slice(&cipher.element_to_bytes(c));
    }
    out
}

fn decode(cipher: &CommutativeCipher, bytes: &[u8]) -> Vec<BigUint> {
    bytes
        .chunks(CommutativeCipher::ELEMENT_BYTES)
        .map(|c| cipher.element_from_bytes(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn run(datasets: &[Vec<String>]) -> PsopOutcome {
        let mut net = SimNetwork::new(datasets.len() + 1);
        run_psop(datasets, &PsopConfig::default(), &mut net)
    }

    #[test]
    fn two_party_overlap() {
        let out = run(&[strings(&["a", "b", "c"]), strings(&["b", "c", "d"])]);
        assert_eq!(out.intersection, 2);
        assert_eq!(out.union, 4);
        assert!((out.jaccard - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_party_shared_core() {
        let out = run(&[
            strings(&["x", "a"]),
            strings(&["x", "b"]),
            strings(&["x", "c"]),
        ]);
        assert_eq!(out.intersection, 1);
        assert_eq!(out.union, 4);
    }

    #[test]
    fn disjoint_sets() {
        let out = run(&[strings(&["a"]), strings(&["b"])]);
        assert_eq!(out.intersection, 0);
        assert_eq!(out.union, 2);
        assert_eq!(out.jaccard, 0.0);
    }

    #[test]
    fn identical_sets() {
        let s = strings(&["p", "q", "r"]);
        let out = run(&[s.clone(), s]);
        assert_eq!(out.intersection, 3);
        assert_eq!(out.union, 3);
        assert_eq!(out.jaccard, 1.0);
    }

    #[test]
    fn matches_exact_jaccard() {
        use crate::jaccard::jaccard_exact;
        use std::collections::BTreeSet;
        let a = strings(&["libc6", "openssl", "zlib", "erlang"]);
        let b = strings(&["libc6", "openssl", "boost", "pcre"]);
        let c = strings(&["libc6", "jemalloc", "openssl"]);
        let exact = {
            let sets: Vec<BTreeSet<String>> = [&a, &b, &c]
                .iter()
                .map(|v| v.iter().cloned().collect())
                .collect();
            jaccard_exact(&sets)
        };
        let out = run(&[a, b, c]);
        assert!((out.jaccard - exact).abs() < 1e-12);
    }

    #[test]
    fn multiset_disambiguation_counts_duplicates() {
        // a appears twice on both sides: both copies intersect.
        let out = run(&[strings(&["a", "a", "b"]), strings(&["a", "a", "c"])]);
        assert_eq!(out.intersection, 2);
        assert_eq!(out.union, 4); // a‖1, a‖2, b‖1, c‖1.
    }

    #[test]
    fn traffic_shape_linear_in_elements() {
        let small = run(&[strings(&["a", "b"]), strings(&["c", "d"])]);
        let big_a: Vec<String> = (0..20).map(|i| format!("a{i}")).collect();
        let big_b: Vec<String> = (0..20).map(|i| format!("b{i}")).collect();
        let big = run(&[big_a, big_b]);
        // 10× the elements → 10× the traffic (fixed-width ciphertexts).
        assert_eq!(big.traffic.total_bytes(), 10 * small.traffic.total_bytes());
    }

    #[test]
    fn per_provider_traffic_accounted() {
        let out = run(&[strings(&["a", "b", "c"]), strings(&["d", "e", "f"])]);
        // Each provider sends its 3-element list twice (ring + agent) plus
        // forwards the peer's list once: 9 ciphertexts of 128 bytes.
        assert_eq!(out.traffic.sent_bytes(0), 9 * 128);
        assert_eq!(out.traffic.sent_bytes(1), 9 * 128);
    }

    #[test]
    #[should_panic(expected = "at least two providers")]
    fn single_provider_rejected() {
        let mut net = SimNetwork::new(2);
        let _ = run_psop(&[strings(&["a"])], &PsopConfig::default(), &mut net);
    }
}
