//! P-SOP: private set-intersection cardinality over commutative encryption
//! (Vaidya & Clifton [58]; §4.2.2 and §4.2.4 of the paper).
//!
//! The k providers form a logical ring. Each provider:
//!
//! 1. disambiguates duplicates (`e‖1 … e‖t`), hashes every element into the
//!    shared group, encrypts with its own Pohlig–Hellman key, permutes, and
//!    sends the list to its ring successor;
//! 2. on receiving a list, adds its own encryption layer, permutes, and
//!    forwards — until every list carries all k layers;
//! 3. the fully-encrypted lists are sent to the auditing agent, who counts
//!    equal ciphertexts: equal plaintexts produce equal k-layer ciphertexts
//!    (commutativity), so the agent learns `|∩ᵢ Sᵢ|` and `|∪ᵢ Sᵢ|` and
//!    *nothing about the elements themselves*.
//!
//! The protocol is factored into a per-party state machine ([`PsopParty`])
//! driven over any [`Transport`]: [`run_psop`] plays every party on the
//! in-process [`SimNetwork`] (Figure 8's bandwidth numbers come straight
//! from its byte counters), while [`run_psop_party`] executes exactly one
//! party's rounds — the entry point a federated daemon calls with its
//! one-party TCP transport view (`indaas-federation`). Both paths share
//! the same cryptographic steps and per-party RNG streams, so a federated
//! run and a simulated run of the same topology produce identical results
//! *and* identical per-party traffic.

use std::collections::HashMap;

use indaas_bigint::BigUint;
use indaas_crypto::{shuffle, CommutativeCipher};
use indaas_simnet::{SimNetwork, TrafficStats, Transport, TransportError};
use rand::SeedableRng;

/// Configuration for a P-SOP run.
#[derive(Clone, Copy, Debug)]
pub struct PsopConfig {
    /// RNG seed for key generation and permutations.
    pub seed: u64,
    /// Treat inputs as multisets, applying the `e‖i` disambiguation.
    pub multiset: bool,
}

impl Default for PsopConfig {
    fn default() -> Self {
        PsopConfig {
            seed: 0x50_50,
            multiset: true,
        }
    }
}

/// Width of one P-SOP ciphertext on the wire — every protocol payload
/// is a whole number of these (consumers validating peer input check
/// against this instead of reaching into the crypto crate).
pub const CIPHERTEXT_BYTES: usize = CommutativeCipher::ELEMENT_BYTES;

/// Result of a P-SOP run.
#[derive(Clone, Debug)]
pub struct PsopOutcome {
    /// `|S₀ ∩ … ∩ S_{k−1}|` — elements present at every provider.
    pub intersection: usize,
    /// `|S₀ ∪ … ∪ S_{k−1}|` — distinct elements overall.
    pub union: usize,
    /// `intersection / union` (0 when the union is empty).
    pub jaccard: f64,
    /// Per-party traffic as measured on the transport.
    pub traffic: TrafficStats,
}

/// One provider's protocol state: its Pohlig–Hellman key and its private
/// permutation RNG stream.
///
/// The RNG is derived from `(config.seed, party index)` so a party's
/// stream depends on nothing another party does — the property that lets
/// k independent daemons each reconstruct *their own* state without any
/// shared-RNG coordination, while a single-process driver instantiating
/// all k parties stays bit-identical to the distributed run.
pub struct PsopParty {
    index: usize,
    parties: usize,
    cipher: CommutativeCipher,
    rng: rand::rngs::StdRng,
}

impl PsopParty {
    /// Initializes party `index` of `parties` providers.
    ///
    /// # Panics
    ///
    /// Panics if `parties < 2` or `index` is out of range.
    pub fn new(index: usize, parties: usize, config: &PsopConfig) -> Self {
        assert!(parties >= 2, "P-SOP needs at least two providers");
        assert!(index < parties, "party index out of range");
        // Weyl-sequence derivation keeps per-party streams disjoint for
        // any base seed.
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            config
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1)),
        );
        let cipher = CommutativeCipher::generate(&mut rng);
        PsopParty {
            index,
            parties,
            cipher,
            rng,
        }
    }

    /// This party's ring position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Ring successor (the party this one forwards lists to).
    pub fn successor(&self) -> usize {
        (self.index + 1) % self.parties
    }

    /// Round 0: hash + encrypt + permute this party's own dataset into the
    /// wire payload for its ring successor.
    pub fn initial_payload(&mut self, data: &[String], multiset: bool) -> Vec<u8> {
        let prepared = prepare(data, multiset);
        let mut cts: Vec<BigUint> = prepared
            .iter()
            .map(|e| {
                self.cipher
                    .encrypt(&self.cipher.hash_to_group(e.as_bytes()))
            })
            .collect();
        shuffle(&mut cts, &mut self.rng);
        encode(&self.cipher, &cts)
    }

    /// Rounds 1..k−1: add this party's encryption layer to a circulating
    /// list and permute, producing the payload to forward.
    pub fn relay(&mut self, payload: &[u8]) -> Vec<u8> {
        let mut cts = decode(&self.cipher, payload);
        for c in &mut cts {
            *c = self.cipher.encrypt(c);
        }
        shuffle(&mut cts, &mut self.rng);
        encode(&self.cipher, &cts)
    }
}

/// The auditing agent's counting step: given every party's fully-encrypted
/// list, counts distinct ciphertexts (union) and ciphertexts appearing in
/// all `k` lists (intersection).
pub fn count_final_lists<'a>(
    payloads: impl IntoIterator<Item = &'a [u8]>,
    k: usize,
) -> (usize, usize) {
    let mut counts: HashMap<&[u8], usize> = HashMap::new();
    for payload in payloads {
        for chunk in payload.chunks(CommutativeCipher::ELEMENT_BYTES) {
            *counts.entry(chunk).or_insert(0) += 1;
        }
    }
    let union = counts.len();
    let intersection = counts.values().filter(|&&c| c == k).count();
    (intersection, union)
}

/// Builds a [`PsopOutcome`] from agent-side counts and transport stats.
pub fn outcome_from_counts(
    intersection: usize,
    union: usize,
    traffic: TrafficStats,
) -> PsopOutcome {
    PsopOutcome {
        intersection,
        union,
        jaccard: if union == 0 {
            0.0
        } else {
            intersection as f64 / union as f64
        },
        traffic,
    }
}

/// Runs P-SOP across `datasets` (one per provider; party `i` on the ring)
/// on the in-process simulated network.
///
/// The network must have `k + 1` parties: `0..k` are providers, party `k`
/// is the auditing agent receiving the final lists.
///
/// # Panics
///
/// Panics if fewer than two datasets are supplied or the network is not
/// sized `k + 1`.
pub fn run_psop(
    datasets: &[Vec<String>],
    config: &PsopConfig,
    net: &mut SimNetwork,
) -> PsopOutcome {
    run_psop_transport(datasets, config, net).expect("in-process transport cannot fail")
}

/// [`run_psop`] over any [`Transport`] hosting all `k + 1` parties: the
/// caller's loop plays every provider and the agent, which is exactly the
/// shape of the simulated single-process run.
///
/// # Errors
///
/// Propagates transport failures (impossible on [`SimNetwork`] with a
/// correctly-sized network).
///
/// # Panics
///
/// Panics if fewer than two datasets are supplied or the transport is not
/// sized `k + 1`.
pub fn run_psop_transport<T: Transport>(
    datasets: &[Vec<String>],
    config: &PsopConfig,
    net: &mut T,
) -> Result<PsopOutcome, TransportError> {
    let k = datasets.len();
    assert!(k >= 2, "P-SOP needs at least two providers");
    assert_eq!(
        net.parties(),
        k + 1,
        "network must host k providers + agent"
    );
    let agent = k;

    let mut parties: Vec<PsopParty> = (0..k).map(|i| PsopParty::new(i, k, config)).collect();

    // Round 0: every party encrypts + permutes its own list and sends it
    // to its successor.
    for (i, data) in datasets.iter().enumerate() {
        let payload = parties[i].initial_payload(data, config.multiset);
        net.send(i, parties[i].successor(), payload)?;
    }

    // Rounds 1..k-1: each party re-encrypts what it receives and forwards.
    for _round in 1..k {
        for (i, party) in parties.iter_mut().enumerate() {
            let msg = net.recv(i)?;
            let payload = party.relay(&msg.payload);
            net.send(i, party.successor(), payload)?;
        }
    }

    // Final hop: each party receives its own fully-encrypted list back and
    // shares it with the auditing agent.
    for i in 0..k {
        let msg = net.recv(i)?;
        net.send(i, agent, msg.payload)?;
    }

    // The agent counts common and distinct ciphertexts.
    let mut finals: Vec<Vec<u8>> = Vec::with_capacity(k);
    for _ in 0..k {
        finals.push(net.recv(agent)?.payload);
    }
    let (intersection, union) = count_final_lists(finals.iter().map(Vec::as_slice), k);
    Ok(outcome_from_counts(
        intersection,
        union,
        net.stats().clone(),
    ))
}

/// Executes exactly one party's rounds of P-SOP on a transport that hosts
/// (at least locally) parties `0..k+1` — the federated entry point.
///
/// `net` is typically a one-party view: `send` is only valid from `index`
/// and `recv` only for it. The sequence is the projection of
/// [`run_psop_transport`] onto party `index`:
///
/// 1. send the encrypted own list to the ring successor,
/// 2. for each of the k−1 relay rounds: receive, add a layer, forward,
/// 3. receive the own fully-encrypted list back and hand it to the agent
///    (party `k`).
///
/// # Errors
///
/// Propagates transport failures (peer loss, round deadline expiry).
///
/// # Panics
///
/// Panics if `index` is out of range or `parties < 2`.
pub fn run_psop_party<T: Transport>(
    data: &[String],
    config: &PsopConfig,
    index: usize,
    parties: usize,
    net: &mut T,
) -> Result<(), TransportError> {
    let mut party = PsopParty::new(index, parties, config);
    let agent = parties;
    let payload = party.initial_payload(data, config.multiset);
    net.send(index, party.successor(), payload)?;
    for _round in 1..parties {
        let msg = net.recv(index)?;
        let payload = party.relay(&msg.payload);
        net.send(index, party.successor(), payload)?;
    }
    let msg = net.recv(index)?;
    net.send(index, agent, msg.payload)?;
    Ok(())
}

/// Duplicate disambiguation: element `e` occurring `t` times becomes
/// `e‖1 … e‖t` (sets pass through unchanged apart from the `‖1` tag).
fn prepare(data: &[String], multiset: bool) -> Vec<String> {
    if !multiset {
        return data.to_vec();
    }
    let mut seen: HashMap<&str, usize> = HashMap::new();
    data.iter()
        .map(|e| {
            let n = seen.entry(e.as_str()).or_insert(0);
            *n += 1;
            format!("{e}\u{2016}{n}")
        })
        .collect()
}

fn encode(cipher: &CommutativeCipher, cts: &[BigUint]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cts.len() * CommutativeCipher::ELEMENT_BYTES);
    for c in cts {
        out.extend_from_slice(&cipher.element_to_bytes(c));
    }
    out
}

fn decode(cipher: &CommutativeCipher, bytes: &[u8]) -> Vec<BigUint> {
    bytes
        .chunks(CommutativeCipher::ELEMENT_BYTES)
        .map(|c| cipher.element_from_bytes(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn run(datasets: &[Vec<String>]) -> PsopOutcome {
        let mut net = SimNetwork::new(datasets.len() + 1);
        run_psop(datasets, &PsopConfig::default(), &mut net)
    }

    #[test]
    fn two_party_overlap() {
        let out = run(&[strings(&["a", "b", "c"]), strings(&["b", "c", "d"])]);
        assert_eq!(out.intersection, 2);
        assert_eq!(out.union, 4);
        assert!((out.jaccard - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_party_shared_core() {
        let out = run(&[
            strings(&["x", "a"]),
            strings(&["x", "b"]),
            strings(&["x", "c"]),
        ]);
        assert_eq!(out.intersection, 1);
        assert_eq!(out.union, 4);
    }

    #[test]
    fn disjoint_sets() {
        let out = run(&[strings(&["a"]), strings(&["b"])]);
        assert_eq!(out.intersection, 0);
        assert_eq!(out.union, 2);
        assert_eq!(out.jaccard, 0.0);
    }

    #[test]
    fn identical_sets() {
        let s = strings(&["p", "q", "r"]);
        let out = run(&[s.clone(), s]);
        assert_eq!(out.intersection, 3);
        assert_eq!(out.union, 3);
        assert_eq!(out.jaccard, 1.0);
    }

    #[test]
    fn matches_exact_jaccard() {
        use crate::jaccard::jaccard_exact;
        use std::collections::BTreeSet;
        let a = strings(&["libc6", "openssl", "zlib", "erlang"]);
        let b = strings(&["libc6", "openssl", "boost", "pcre"]);
        let c = strings(&["libc6", "jemalloc", "openssl"]);
        let exact = {
            let sets: Vec<BTreeSet<String>> = [&a, &b, &c]
                .iter()
                .map(|v| v.iter().cloned().collect())
                .collect();
            jaccard_exact(&sets)
        };
        let out = run(&[a, b, c]);
        assert!((out.jaccard - exact).abs() < 1e-12);
    }

    #[test]
    fn multiset_disambiguation_counts_duplicates() {
        // a appears twice on both sides: both copies intersect.
        let out = run(&[strings(&["a", "a", "b"]), strings(&["a", "a", "c"])]);
        assert_eq!(out.intersection, 2);
        assert_eq!(out.union, 4); // a‖1, a‖2, b‖1, c‖1.
    }

    #[test]
    fn traffic_shape_linear_in_elements() {
        let small = run(&[strings(&["a", "b"]), strings(&["c", "d"])]);
        let big_a: Vec<String> = (0..20).map(|i| format!("a{i}")).collect();
        let big_b: Vec<String> = (0..20).map(|i| format!("b{i}")).collect();
        let big = run(&[big_a, big_b]);
        // 10× the elements → 10× the traffic (fixed-width ciphertexts).
        assert_eq!(big.traffic.total_bytes(), 10 * small.traffic.total_bytes());
    }

    #[test]
    fn per_provider_traffic_accounted() {
        let out = run(&[strings(&["a", "b", "c"]), strings(&["d", "e", "f"])]);
        // Each provider sends its 3-element list twice (ring + agent) plus
        // forwards the peer's list once: 9 ciphertexts of 128 bytes.
        assert_eq!(out.traffic.sent_bytes(0), 9 * 128);
        assert_eq!(out.traffic.sent_bytes(1), 9 * 128);
    }

    #[test]
    #[should_panic(expected = "at least two providers")]
    fn single_provider_rejected() {
        let mut net = SimNetwork::new(2);
        let _ = run_psop(&[strings(&["a"])], &PsopConfig::default(), &mut net);
    }

    /// Each party's rounds, executed independently through
    /// [`run_psop_party`] over a shared SimNetwork, must reproduce the
    /// all-parties driver exactly — the invariant the federated daemons
    /// rely on.
    #[test]
    fn per_party_driver_matches_global_driver() {
        let datasets = [
            strings(&["libc", "ssl", "riak"]),
            strings(&["libc", "boost"]),
            strings(&["libc", "ssl", "redis", "zlib"]),
        ];
        let config = PsopConfig::default();
        let global = {
            let mut net = SimNetwork::new(4);
            run_psop(&datasets, &config, &mut net)
        };

        // Drive the same protocol party-by-party, interleaved by round so
        // every recv finds its message pending (the simulated network is
        // non-blocking). Interleaving: all round-0 sends, then relays, etc.
        let k = datasets.len();
        let mut net = SimNetwork::new(k + 1);
        let mut parties: Vec<PsopParty> = (0..k).map(|i| PsopParty::new(i, k, &config)).collect();
        for (i, p) in parties.iter_mut().enumerate() {
            let payload = p.initial_payload(&datasets[i], config.multiset);
            let to = p.successor();
            Transport::send(&mut net, i, to, payload).unwrap();
        }
        for _round in 1..k {
            for (i, p) in parties.iter_mut().enumerate() {
                let msg = Transport::recv(&mut net, i).unwrap();
                let to = p.successor();
                let payload = p.relay(&msg.payload);
                Transport::send(&mut net, i, to, payload).unwrap();
            }
        }
        for i in 0..k {
            let msg = Transport::recv(&mut net, i).unwrap();
            Transport::send(&mut net, i, k, msg.payload).unwrap();
        }
        let finals: Vec<Vec<u8>> = (0..k)
            .map(|_| Transport::recv(&mut net, k).unwrap().payload)
            .collect();
        let (intersection, union) = count_final_lists(finals.iter().map(Vec::as_slice), k);

        assert_eq!(intersection, global.intersection);
        assert_eq!(union, global.union);
        for i in 0..k {
            assert_eq!(
                net.stats().sent_bytes(i),
                global.traffic.sent_bytes(i),
                "party {i} sent bytes diverge"
            );
            assert_eq!(net.stats().recv_bytes(i), global.traffic.recv_bytes(i));
        }
        assert_eq!(net.stats().message_count(), global.traffic.message_count());
    }

    #[test]
    fn count_final_lists_counts_chunks() {
        // Two 128-byte "ciphertexts", one shared.
        let a: Vec<u8> = [vec![1u8; 128], vec![2u8; 128]].concat();
        let b: Vec<u8> = [vec![1u8; 128], vec![3u8; 128]].concat();
        let (inter, union) = count_final_lists([a.as_slice(), b.as_slice()], 2);
        assert_eq!((inter, union), (1, 3));
    }
}
