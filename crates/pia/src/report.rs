//! PIA auditing reports (§4.2.5): ranking candidate redundancy deployments
//! by Jaccard similarity, as in Table 2 of the paper.

use indaas_graph::{CancelToken, Cancelled};
use indaas_simnet::SimNetwork;
use serde::{Deserialize, Serialize};

use crate::minhash::{minhash_signature, signature_elements};
use crate::psop::{run_psop, PsopConfig};

/// One ranked candidate deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PiaRanking {
    /// Provider names in the deployment.
    pub providers: Vec<String>,
    /// Jaccard similarity (exact from P-SOP, or MinHash-estimated).
    pub jaccard: f64,
}

/// Ranks all `way`-sized provider combinations by Jaccard similarity
/// (ascending — the most independent deployment first), running one P-SOP
/// instance per combination.
///
/// `minhash` switches large component sets to the MinHash path with the
/// given number of hash functions, exactly as §4.2.4 prescribes.
///
/// # Panics
///
/// Panics if `way < 2`, fewer than `way` providers exist, or any provider
/// set is empty when MinHash is requested.
pub fn rank_deployments(
    providers: &[(String, Vec<String>)],
    way: usize,
    minhash: Option<usize>,
    config: &PsopConfig,
) -> Vec<PiaRanking> {
    rank_deployments_cancellable(providers, way, minhash, config, &CancelToken::default())
        .expect("default token never cancels")
}

/// [`rank_deployments`] with cooperative cancellation, polled before each
/// provider combination's P-SOP run (the protocol itself is the unit of
/// work — combinations dominate the cost at scale).
///
/// # Errors
///
/// Returns [`Cancelled`] if the token trips between combinations.
///
/// # Panics
///
/// Panics under the same conditions as [`rank_deployments`].
pub fn rank_deployments_cancellable(
    providers: &[(String, Vec<String>)],
    way: usize,
    minhash: Option<usize>,
    config: &PsopConfig,
    token: &CancelToken,
) -> Result<Vec<PiaRanking>, Cancelled> {
    assert!(
        way >= 2,
        "redundancy deployments span at least two providers"
    );
    assert!(providers.len() >= way, "not enough providers");
    let mut rankings = Vec::new();
    for combo in combinations(providers.len(), way) {
        token.check()?;
        let datasets: Vec<Vec<String>> = combo
            .iter()
            .map(|&i| match minhash {
                Some(m) => signature_elements(&minhash_signature(&providers[i].1, m)),
                None => providers[i].1.clone(),
            })
            .collect();
        let mut net = SimNetwork::new(way + 1);
        let outcome = run_psop(&datasets, config, &mut net);
        let jaccard = match minhash {
            // δ/m slot-agreement estimator.
            Some(m) => outcome.intersection as f64 / m as f64,
            None => outcome.jaccard,
        };
        rankings.push(PiaRanking {
            providers: combo.iter().map(|&i| providers[i].0.clone()).collect(),
            jaccard,
        });
    }
    rankings.sort_by(|a, b| {
        a.jaccard
            .partial_cmp(&b.jaccard)
            .expect("finite similarities")
            .then_with(|| a.providers.cmp(&b.providers))
    });
    Ok(rankings)
}

/// Renders a Table-2-style ranking.
pub fn render_ranking(way: usize, rankings: &[PiaRanking]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Rank  {way}-Way Redundancy Deployment               Jaccard\n"
    ));
    for (i, r) in rankings.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:<42} {:.4}\n",
            i + 1,
            r.providers.join(" & "),
            r.jaccard
        ));
    }
    out
}

/// An n-of-m deployment's similarity profile (§4.2.5): the paper requires
/// the Jaccard similarity across the *n* primary providers and across all
/// *m* providers of an n-of-m redundancy deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NOfMRanking {
    /// The n primary providers.
    pub primaries: Vec<String>,
    /// Jaccard across the n primaries.
    pub primary_jaccard: f64,
    /// Jaccard across all m providers.
    pub full_jaccard: f64,
}

/// Evaluates an n-of-m deployment privately: one P-SOP run across the `n`
/// primaries (`primary_idx` into `providers`) and one across all `m`.
///
/// # Panics
///
/// Panics if fewer than two primaries are given or indices are out of
/// range.
pub fn rank_n_of_m(
    providers: &[(String, Vec<String>)],
    primary_idx: &[usize],
    config: &PsopConfig,
) -> NOfMRanking {
    assert!(primary_idx.len() >= 2, "need at least two primaries");
    assert!(primary_idx.iter().all(|&i| i < providers.len()));
    let run = |idx: &[usize]| -> f64 {
        let datasets: Vec<Vec<String>> = idx.iter().map(|&i| providers[i].1.clone()).collect();
        let mut net = SimNetwork::new(idx.len() + 1);
        run_psop(&datasets, config, &mut net).jaccard
    };
    let all: Vec<usize> = (0..providers.len()).collect();
    NOfMRanking {
        primaries: primary_idx
            .iter()
            .map(|&i| providers[i].0.clone())
            .collect(),
        primary_jaccard: run(primary_idx),
        full_jaccard: run(&all),
    }
}

/// All `k`-subsets of `0..n`, lexicographic.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(0, n, k, &mut Vec::new(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn providers() -> Vec<(String, Vec<String>)> {
        let mk = |name: &str, items: &[&str]| {
            (
                name.to_string(),
                items.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
        };
        vec![
            mk("Cloud1", &["libc", "erlang", "ssl", "riak"]),
            mk("Cloud2", &["libc", "boost", "ssl", "mongo"]),
            mk("Cloud3", &["libc", "jemalloc", "redis"]),
            mk("Cloud4", &["libc", "erlang", "ssl", "couch"]),
        ]
    }

    #[test]
    fn two_way_ranking_is_ascending() {
        let r = rank_deployments(&providers(), 2, None, &PsopConfig::default());
        assert_eq!(r.len(), 6);
        for w in r.windows(2) {
            assert!(w[0].jaccard <= w[1].jaccard);
        }
        // Riak & CouchDB share the most → last (least independent).
        let last = &r[r.len() - 1];
        assert_eq!(last.providers, vec!["Cloud1", "Cloud4"]);
    }

    #[test]
    fn three_way_ranking_counts() {
        let r = rank_deployments(&providers(), 3, None, &PsopConfig::default());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn minhash_path_produces_similar_order() {
        // With plenty of hash functions the MinHash ranking should put the
        // most-overlapping pair last, like the exact path.
        let r = rank_deployments(&providers(), 2, Some(128), &PsopConfig::default());
        let last = &r[r.len() - 1];
        assert_eq!(last.providers, vec!["Cloud1", "Cloud4"]);
    }

    #[test]
    fn render_contains_rows() {
        let r = rank_deployments(&providers(), 2, None, &PsopConfig::default());
        let text = render_ranking(2, &r);
        assert!(text.contains("Cloud1 & Cloud4"));
        assert!(text.contains("Jaccard"));
    }

    #[test]
    fn n_of_m_profile() {
        let p = providers();
        let r = rank_n_of_m(&p, &[1, 2], &PsopConfig::default());
        assert_eq!(r.primaries, vec!["Cloud2", "Cloud3"]);
        // Primary Jaccard must equal the pairwise ranking's value.
        let pairwise = rank_deployments(&p, 2, None, &PsopConfig::default());
        let same = pairwise
            .iter()
            .find(|x| x.providers == vec!["Cloud2", "Cloud3"])
            .unwrap();
        assert!((r.primary_jaccard - same.jaccard).abs() < 1e-12);
        // The 4-way Jaccard is at most any pairwise one.
        assert!(r.full_jaccard <= r.primary_jaccard + 1e-12);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(4, 3).len(), 4);
        assert_eq!(combinations(4, 4).len(), 1);
        assert!(combinations(3, 5).is_empty());
    }
}
