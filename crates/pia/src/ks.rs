//! A Kissner–Song-style private set-intersection-cardinality baseline
//! (§6.3.2, Figure 8).
//!
//! The paper compares P-SOP against Kissner & Song's homomorphic
//! set-operation protocol [38]. We implement a cost-faithful baseline in
//! the same design space — encrypted-polynomial set membership over
//! Paillier (Freedman et al. [21], generalized to k parties by chaining):
//!
//! * the auditing agent holds the Paillier keypair (matching INDaaS's
//!   honest-but-curious, non-colluding agent, §4.2.1);
//! * provider `j` encodes its hashed elements as the roots of per-bucket
//!   polynomials and sends the *encrypted coefficients* to provider 0;
//! * provider 0 homomorphically evaluates `Enc(r · P_j(b))` for each of its
//!   still-surviving elements `b` (Horner, one scalar-mul + add per
//!   coefficient) and forwards the randomized ciphertexts to the agent;
//! * the agent decrypts: zero means `b ∈ S_j`; survivors continue down the
//!   chain, and after all k−1 polynomials the survivor count is
//!   `|S₀ ∩ … ∩ S_{k−1}|`.
//!
//! Hash bucketization (Freedman's balanced-allocation trick) keeps the
//! polynomial degree constant, so total work is O(k·n) homomorphic
//! operations rather than O(k·n²). Full KS — threshold decryption,
//! polynomial multiplication trees, zero-knowledge proofs — is out of
//! scope; this baseline reproduces the *cost shape* the paper reports:
//! Paillier arithmetic dominating, orders of magnitude above P-SOP.

use std::collections::HashMap;

use indaas_bigint::BigUint;
use indaas_crypto::{sha256, PaillierCiphertext, PaillierKeypair};
use indaas_simnet::{SimNetwork, TrafficStats};
use rand::SeedableRng;

/// Configuration for the KS baseline.
#[derive(Clone, Copy, Debug)]
pub struct KsConfig {
    /// Paillier modulus size in bits (the paper uses 1024).
    pub key_bits: usize,
    /// Target bucket size (polynomial degree); larger = fewer, bigger
    /// polynomials = more homomorphic work per element.
    pub bucket_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KsConfig {
    fn default() -> Self {
        KsConfig {
            key_bits: 1024,
            bucket_size: 16,
            seed: 0x4b53,
        }
    }
}

/// Result of a KS baseline run.
#[derive(Clone, Debug)]
pub struct KsOutcome {
    /// `|S₀ ∩ … ∩ S_{k−1}|`.
    pub intersection: usize,
    /// Per-party traffic (providers `0..k`, agent at index `k`).
    pub traffic: TrafficStats,
}

/// Runs the KS-style chained intersection cardinality across `datasets`.
///
/// The network must host `k + 1` parties (providers plus agent).
///
/// # Panics
///
/// Panics if fewer than two datasets are supplied or the network is not
/// sized `k + 1`.
pub fn run_ks(datasets: &[Vec<String>], config: &KsConfig, net: &mut SimNetwork) -> KsOutcome {
    let k = datasets.len();
    assert!(k >= 2, "KS needs at least two providers");
    assert_eq!(
        net.parties(),
        k + 1,
        "network must host k providers + agent"
    );
    let agent = k;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    // The agent generates the keypair; the public key is broadcast (a few
    // hundred bytes, negligible but accounted).
    let kp = PaillierKeypair::generate(config.key_bits, &mut rng);
    let pk = kp.public();
    let n_bytes = pk.modulus().to_bytes_be();
    for j in 0..k {
        net.send(agent, j, n_bytes.clone());
        let _ = net.recv_expect(j);
    }

    // Hash every element to a 64-bit plaintext; bucket count is sized for
    // provider 0's set (all parties must agree on it).
    let hashed: Vec<Vec<u64>> = datasets.iter().map(|d| hash_elements(d)).collect();
    let buckets = (hashed[0].len().div_ceil(config.bucket_size)).max(1);

    // Provider 0's survivors, starting with its whole set.
    let mut survivors: Vec<u64> = hashed[0].clone();

    for (j, hashed_j) in hashed.iter().enumerate().take(k).skip(1) {
        // Provider j builds per-bucket encrypted polynomials and sends the
        // coefficient table to provider 0.
        let polys = build_bucket_polynomials(hashed_j, buckets, pk.modulus());
        let mut table: Vec<Vec<PaillierCiphertext>> = Vec::with_capacity(buckets);
        let mut wire = Vec::new();
        for coeffs in &polys {
            let encs: Vec<PaillierCiphertext> =
                coeffs.iter().map(|c| pk.encrypt(c, &mut rng)).collect();
            for e in &encs {
                wire.extend_from_slice(&pk.ciphertext_to_bytes(e));
            }
            table.push(encs);
        }
        net.send(j, 0, wire);
        let _ = net.recv_expect(0); // Provider 0 consumes the table bytes.

        // Provider 0 evaluates Enc(r·P(b)) per surviving element.
        let mut eval_wire = Vec::new();
        for &b in &survivors {
            let bucket = (b % buckets as u64) as usize;
            let enc_pb = horner_eval(&table[bucket], b, pk);
            // Randomize: a zero survives, a non-zero becomes random.
            let r = loop {
                let r = BigUint::random_below(&mut rng, pk.modulus());
                if !r.is_zero() {
                    break r;
                }
            };
            let masked = pk.mul_const(&enc_pb, &r);
            eval_wire.extend_from_slice(&pk.ciphertext_to_bytes(&masked));
        }
        net.send(0, agent, eval_wire);
        let msg = net.recv_expect(agent);

        // The agent decrypts and returns membership flags.
        let ct_len = pk.ciphertext_bytes();
        let flags: Vec<u8> = msg
            .payload
            .chunks(ct_len)
            .map(|chunk| {
                let ct = PaillierCiphertext(BigUint::from_bytes_be(chunk));
                u8::from(kp.decrypt(&ct).is_zero())
            })
            .collect();
        net.send(agent, 0, flags.clone());
        let _ = net.recv_expect(0);
        survivors = survivors
            .iter()
            .zip(&flags)
            .filter(|&(_, &f)| f == 1)
            .map(|(&b, _)| b)
            .collect();
        if survivors.is_empty() {
            break;
        }
    }

    KsOutcome {
        intersection: survivors.len(),
        traffic: net.stats().clone(),
    }
}

/// Hashes string elements to distinct 64-bit plaintexts (dedup applied —
/// the protocol operates on sets).
fn hash_elements(data: &[String]) -> Vec<u64> {
    let mut seen = HashMap::new();
    let mut out = Vec::with_capacity(data.len());
    for e in data {
        let digest = sha256(e.as_bytes());
        let h = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
        if seen.insert(h, ()).is_none() {
            out.push(h);
        }
    }
    out
}

/// Builds each bucket's monic polynomial `Π (x − aᵢ) mod n` as a
/// low-to-high coefficient vector; empty buckets get the constant 1
/// (no roots — nothing matches).
fn build_bucket_polynomials(elements: &[u64], buckets: usize, n: &BigUint) -> Vec<Vec<BigUint>> {
    let mut per_bucket: Vec<Vec<u64>> = vec![Vec::new(); buckets];
    for &e in elements {
        per_bucket[(e % buckets as u64) as usize].push(e);
    }
    per_bucket
        .into_iter()
        .map(|roots| {
            // Start with the constant polynomial 1.
            let mut coeffs = vec![BigUint::one()];
            for root in roots {
                // Multiply by (x − root): new[i] = old[i−1] + (n − root)·old[i].
                let neg_root = n
                    .checked_sub(&BigUint::from_u64(root).rem(n))
                    .expect("root reduced below n");
                let mut next = vec![BigUint::zero(); coeffs.len() + 1];
                for (i, c) in coeffs.iter().enumerate() {
                    next[i + 1] = (&next[i + 1] + c).rem(n);
                    next[i] = (&next[i] + &(c * &neg_root).rem(n)).rem(n);
                }
                coeffs = next;
            }
            coeffs
        })
        .collect()
}

/// Homomorphic Horner evaluation of an encrypted polynomial at plaintext
/// point `b`: `Enc(P(b)) = Enc(c_d)·b + c_{d−1} …`.
fn horner_eval(
    coeffs: &[PaillierCiphertext],
    b: u64,
    pk: &indaas_crypto::PaillierPublicKey,
) -> PaillierCiphertext {
    let point = BigUint::from_u64(b);
    let mut acc = coeffs.last().expect("non-empty polynomial").clone();
    for c in coeffs.iter().rev().skip(1) {
        acc = pk.add(&pk.mul_const(&acc, &point), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn run(datasets: &[Vec<String>]) -> KsOutcome {
        let mut net = SimNetwork::new(datasets.len() + 1);
        // Small key for test speed; protocol correctness is key-size
        // independent.
        let config = KsConfig {
            key_bits: 128,
            bucket_size: 4,
            seed: 1,
        };
        run_ks(datasets, &config, &mut net)
    }

    #[test]
    fn two_party_intersection() {
        let out = run(&[strings(&["a", "b", "c"]), strings(&["b", "c", "d"])]);
        assert_eq!(out.intersection, 2);
    }

    #[test]
    fn three_party_chained_intersection() {
        let out = run(&[
            strings(&["x", "y", "a"]),
            strings(&["x", "y", "b"]),
            strings(&["y", "c", "x"]),
        ]);
        assert_eq!(out.intersection, 2); // {x, y}
    }

    #[test]
    fn disjoint_sets_empty_intersection() {
        let out = run(&[strings(&["a", "b"]), strings(&["c", "d"])]);
        assert_eq!(out.intersection, 0);
    }

    #[test]
    fn identical_sets_full_intersection() {
        let s = strings(&["p", "q", "r", "s", "t"]);
        let out = run(&[s.clone(), s]);
        assert_eq!(out.intersection, 5);
    }

    #[test]
    fn agrees_with_psop_on_same_inputs() {
        use crate::psop::{run_psop, PsopConfig};
        let a: Vec<String> = (0..12).map(|i| format!("e{i}")).collect();
        let b: Vec<String> = (6..18).map(|i| format!("e{i}")).collect();
        let ks = run(&[a.clone(), b.clone()]);
        let mut net = SimNetwork::new(3);
        let psop = run_psop(&[a, b], &PsopConfig::default(), &mut net);
        assert_eq!(ks.intersection, psop.intersection);
    }

    #[test]
    fn polynomial_roots_are_roots() {
        let n = BigUint::from_u64(1_000_003);
        let polys = build_bucket_polynomials(&[5, 9], 1, &n);
        let coeffs = &polys[0];
        // Evaluate at the roots in plaintext: must be 0 mod n.
        for &root in &[5u64, 9] {
            let mut acc = BigUint::zero();
            let x = BigUint::from_u64(root);
            for c in coeffs.iter().rev() {
                acc = (&(&acc * &x).rem(&n) + c).rem(&n);
            }
            assert!(acc.is_zero(), "root {root} did not evaluate to zero");
        }
        // And at a non-root: non-zero.
        let mut acc = BigUint::zero();
        let x = BigUint::from_u64(7);
        for c in coeffs.iter().rev() {
            acc = (&(&acc * &x).rem(&n) + c).rem(&n);
        }
        assert!(!acc.is_zero());
    }

    #[test]
    fn empty_bucket_polynomial_is_constant_one() {
        let n = BigUint::from_u64(97);
        let polys = build_bucket_polynomials(&[], 3, &n);
        for p in &polys {
            assert_eq!(p.len(), 1);
            assert!(p[0].is_one());
        }
    }

    #[test]
    fn ks_bandwidth_grows_faster_with_k_than_psop() {
        // The shape of Figure 8(a): at k=2 the two protocols are of the
        // same order, but KS's per-provider bandwidth grows faster with the
        // number of providers.
        use crate::psop::{run_psop, PsopConfig};
        // Identical sets keep every element alive through the whole chain,
        // exercising all k−1 KS rounds (the paper's n-element-per-provider
        // sweep has heavy overlap for the same reason).
        let sets = |k: usize| -> Vec<Vec<String>> {
            (0..k)
                .map(|_| (0..16).map(|i| format!("x{i}")).collect())
                .collect()
        };
        let ks_max = |k: usize| -> u64 {
            let mut net = SimNetwork::new(k + 1);
            run_ks(
                &sets(k),
                &KsConfig {
                    key_bits: 256,
                    bucket_size: 8,
                    seed: 3,
                },
                &mut net,
            )
            .traffic
            .max_sent_bytes()
        };
        let psop_max = |k: usize| -> u64 {
            let mut net = SimNetwork::new(k + 1);
            run_psop(&sets(k), &PsopConfig::default(), &mut net)
                .traffic
                .max_sent_bytes()
        };
        let ks_growth = ks_max(4) as f64 / ks_max(2) as f64;
        let psop_growth = psop_max(4) as f64 / psop_max(2) as f64;
        assert!(
            ks_growth > psop_growth,
            "KS growth {ks_growth:.2} should exceed P-SOP growth {psop_growth:.2}"
        );
    }
}
