//! A secure two-party computation (SMPC) baseline for private set
//! intersection cardinality.
//!
//! The paper (§1, §4.2) notes that the most general approach to private
//! independence auditing — generic secure multi-party computation, as
//! explored by Xiao et al. [69] — "performs adequately only on small
//! dependency datasets" and is "impractical currently even for datasets
//! with only a few hundreds of components". This module makes that claim
//! measurable: a GMW-style boolean-circuit evaluation of pairwise
//! equality over XOR-shared inputs, with Beaver multiplication triples
//! served by the auditing agent (who, per the INDaaS trust model, is
//! honest-but-curious and non-colluding).
//!
//! The circuit compares every element of provider 0 against every element
//! of provider 1 (w-bit hashed values, bitwise XNOR then an AND-tree), so
//! both the gate count and the communication grow **quadratically** in the
//! set size — the structural reason SMPC loses to P-SOP's linear ring
//! protocol. Evaluation is bitsliced: 64 comparison lanes per machine
//! word, which makes the baseline as fast as a generic boolean SMPC
//! reasonably gets, and it still falls behind.

use indaas_crypto::sha256;
use indaas_simnet::{TrafficStats, Transport, TransportError};
use rand::{Rng, SeedableRng};

/// Configuration for the SMPC baseline.
#[derive(Clone, Copy, Debug)]
pub struct SmpcConfig {
    /// Bits per hashed element (circuit depth ~ `hash_bits` AND layers).
    pub hash_bits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmpcConfig {
    fn default() -> Self {
        SmpcConfig {
            hash_bits: 32,
            seed: 0x5a5c,
        }
    }
}

/// Result of an SMPC intersection run.
#[derive(Clone, Debug)]
pub struct SmpcOutcome {
    /// `|S₀ ∩ S₁|`.
    pub intersection: usize,
    /// Number of (bitsliced) AND gates evaluated.
    pub and_gates: u64,
    /// Per-party traffic (party 2 is the triple dealer / agent).
    pub traffic: TrafficStats,
}

/// Bit-vectors over comparison lanes: one bit per (i, j) element pair.
type Lanes = Vec<u64>;

/// XOR-shared lane vector held by one party.
#[derive(Clone)]
struct Share(Lanes);

/// Runs the GMW baseline between two providers on `net` (3 parties:
/// providers 0 and 1, triple dealer 2). The transport hosts all three
/// parties, so this driver plays every role — use it on a
/// [`indaas_simnet::SimNetwork`] or any other all-parties [`Transport`].
///
/// # Panics
///
/// Panics if either set is empty, the network is not 3 parties, or the
/// transport fails mid-protocol (impossible in-process).
pub fn run_smpc(
    set_a: &[String],
    set_b: &[String],
    config: &SmpcConfig,
    net: &mut impl Transport,
) -> SmpcOutcome {
    run_smpc_transport(set_a, set_b, config, net).expect("in-process transport cannot fail")
}

/// [`run_smpc`] surfacing transport failures instead of panicking.
///
/// # Errors
///
/// Propagates the first [`TransportError`] hit mid-protocol.
///
/// # Panics
///
/// Panics on invalid inputs (empty sets, wrong party count, bad
/// `hash_bits`), like [`run_smpc`].
pub fn run_smpc_transport(
    set_a: &[String],
    set_b: &[String],
    config: &SmpcConfig,
    net: &mut impl Transport,
) -> Result<SmpcOutcome, TransportError> {
    assert!(
        !set_a.is_empty() && !set_b.is_empty(),
        "sets must be non-empty"
    );
    assert_eq!(net.parties(), 3, "two providers plus the triple dealer");
    assert!(
        (1..=64).contains(&config.hash_bits),
        "hash_bits must be in 1..=64"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let (na, nb) = (set_a.len(), set_b.len());
    let lanes = na * nb;
    let words = lanes.div_ceil(64);

    let ha = hash_all(set_a, config.hash_bits);
    let hb = hash_all(set_b, config.hash_bits);

    // Secret-share each bit-plane of the comparison inputs. Lane (i, j)
    // compares ha[i] against hb[j]; party 0 owns the A-planes, party 1 the
    // B-planes; each sends the other a random share over the network.
    let mut xnor_shares: Vec<(Share, Share)> = Vec::with_capacity(config.hash_bits);
    for bit in 0..config.hash_bits {
        let plane_a = plane(&ha, bit, |lane| lane / nb, lanes);
        let plane_b = plane(&hb, bit, |lane| lane % nb, lanes);
        let (a0, a1) = share_plane(&plane_a, &mut rng);
        let (b0, b1) = share_plane(&plane_b, &mut rng);
        // Input sharing traffic: one share each way.
        net.send(0, 1, bytes_of(&a1.0))?;
        net.send(1, 0, bytes_of(&b0.0))?;
        let _ = net.recv(1)?;
        let _ = net.recv(0)?;
        // XNOR = XOR ⊕ 1; XOR of shares is local, the NOT is applied by
        // party 0 only (constant folding).
        let mut s0: Lanes = (0..words).map(|w| a0.0[w] ^ b0.0[w] ^ !0u64).collect();
        let s1: Lanes = (0..words).map(|w| a1.0[w] ^ b1.0[w]).collect();
        mask_tail(&mut s0, lanes);
        xnor_shares.push((Share(s0), Share(mask_tail_owned(s1, lanes))));
    }

    // AND-tree over the hash_bits planes.
    let mut and_gates = 0u64;
    let mut acc = xnor_shares.pop().expect("at least one bit plane");
    while let Some(next) = xnor_shares.pop() {
        acc = beaver_and(&acc, &next, words, lanes, net, &mut rng, &mut and_gates)?;
    }

    // Reconstruct the equality lane vector (both parties reveal shares to
    // the agent, who learns only which shuffled lanes matched — i.e., the
    // cardinality; lane order carries no element information because the
    // providers hash and the dealer never sees inputs).
    net.send(0, 2, bytes_of(&acc.0 .0))?;
    net.send(1, 2, bytes_of(&acc.1 .0))?;
    let m0 = net.recv(2)?;
    let m1 = net.recv(2)?;
    let mut matches = 0usize;
    for (x, y) in words_of(&m0.payload).iter().zip(words_of(&m1.payload)) {
        matches += (x ^ y).count_ones() as usize;
    }

    Ok(SmpcOutcome {
        intersection: matches,
        and_gates,
        traffic: net.stats().clone(),
    })
}

/// One Beaver-triple AND layer over bitsliced shares.
fn beaver_and(
    x: &(Share, Share),
    y: &(Share, Share),
    words: usize,
    lanes: usize,
    net: &mut impl Transport,
    rng: &mut impl Rng,
    and_gates: &mut u64,
) -> Result<(Share, Share), TransportError> {
    *and_gates += lanes as u64;
    // Dealer generates triples: c = a & b, all XOR-shared.
    let a: Lanes = random_lanes(words, rng);
    let b: Lanes = random_lanes(words, rng);
    let c: Lanes = a.iter().zip(&b).map(|(p, q)| p & q).collect();
    let (a0, a1) = share_plane(&a, rng);
    let (b0, b1) = share_plane(&b, rng);
    let (c0, c1) = share_plane(&c, rng);
    // Dealer ships triple shares to the two parties.
    for (to, aa, bb, cc) in [(0usize, &a0, &b0, &c0), (1, &a1, &b1, &c1)] {
        let mut payload = bytes_of(&aa.0);
        payload.extend_from_slice(&bytes_of(&bb.0));
        payload.extend_from_slice(&bytes_of(&cc.0));
        net.send(2, to, payload)?;
        let _ = net.recv(to)?;
    }

    // Parties open d = x ⊕ a and e = y ⊕ b.
    let d0: Lanes = (0..words).map(|w| x.0 .0[w] ^ a0.0[w]).collect();
    let e0: Lanes = (0..words).map(|w| y.0 .0[w] ^ b0.0[w]).collect();
    let d1: Lanes = (0..words).map(|w| x.1 .0[w] ^ a1.0[w]).collect();
    let e1: Lanes = (0..words).map(|w| y.1 .0[w] ^ b1.0[w]).collect();
    let mut open0 = bytes_of(&d0);
    open0.extend_from_slice(&bytes_of(&e0));
    let mut open1 = bytes_of(&d1);
    open1.extend_from_slice(&bytes_of(&e1));
    net.send(0, 1, open0)?;
    net.send(1, 0, open1)?;
    let _ = net.recv(1)?;
    let _ = net.recv(0)?;
    let d: Lanes = (0..words).map(|w| d0[w] ^ d1[w]).collect();
    let e: Lanes = (0..words).map(|w| e0[w] ^ e1[w]).collect();

    // z_i = c_i ⊕ (d & b_i) ⊕ (e & a_i) [⊕ d & e for party 0].
    let z0: Lanes = (0..words)
        .map(|w| c0.0[w] ^ (d[w] & b0.0[w]) ^ (e[w] & a0.0[w]) ^ (d[w] & e[w]))
        .collect();
    let z1: Lanes = (0..words)
        .map(|w| c1.0[w] ^ (d[w] & b1.0[w]) ^ (e[w] & a1.0[w]))
        .collect();
    Ok((
        Share(mask_tail_owned(z0, lanes)),
        Share(mask_tail_owned(z1, lanes)),
    ))
}

/// Hashes elements to `bits`-bit values.
fn hash_all(set: &[String], bits: usize) -> Vec<u64> {
    set.iter()
        .map(|e| {
            let digest = sha256(e.as_bytes());
            let v = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
            if bits == 64 {
                v
            } else {
                v & ((1u64 << bits) - 1)
            }
        })
        .collect()
}

/// Builds the lane bit-plane for bit `bit` of the value selected per lane.
fn plane(values: &[u64], bit: usize, select: impl Fn(usize) -> usize, lanes: usize) -> Lanes {
    let words = lanes.div_ceil(64);
    let mut out = vec![0u64; words];
    for lane in 0..lanes {
        if values[select(lane)] >> bit & 1 == 1 {
            out[lane / 64] |= 1 << (lane % 64);
        }
    }
    out
}

fn share_plane(plane: &Lanes, rng: &mut impl Rng) -> (Share, Share) {
    let r: Lanes = plane.iter().map(|_| rng.next_u64()).collect();
    let masked: Lanes = plane.iter().zip(&r).map(|(p, q)| p ^ q).collect();
    (Share(masked), Share(r))
}

fn random_lanes(words: usize, rng: &mut impl Rng) -> Lanes {
    (0..words).map(|_| rng.next_u64()).collect()
}

fn mask_tail(lanes_vec: &mut Lanes, lanes: usize) {
    if !lanes.is_multiple_of(64) {
        if let Some(last) = lanes_vec.last_mut() {
            *last &= (1u64 << (lanes % 64)) - 1;
        }
    }
}

fn mask_tail_owned(mut v: Lanes, lanes: usize) -> Lanes {
    mask_tail(&mut v, lanes);
    v
}

fn bytes_of(lanes: &Lanes) -> Vec<u8> {
    lanes.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn words_of(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunks")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_simnet::SimNetwork;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn run(a: &[&str], b: &[&str]) -> SmpcOutcome {
        let mut net = SimNetwork::new(3);
        run_smpc(&strings(a), &strings(b), &SmpcConfig::default(), &mut net)
    }

    #[test]
    fn basic_intersection() {
        let out = run(&["a", "b", "c"], &["b", "c", "d"]);
        assert_eq!(out.intersection, 2);
    }

    #[test]
    fn disjoint_and_identical() {
        assert_eq!(run(&["a"], &["b"]).intersection, 0);
        assert_eq!(run(&["x", "y"], &["x", "y"]).intersection, 2);
    }

    #[test]
    fn agrees_with_psop() {
        use crate::psop::{run_psop, PsopConfig};
        let a: Vec<String> = (0..20).map(|i| format!("e{i}")).collect();
        let b: Vec<String> = (12..30).map(|i| format!("e{i}")).collect();
        let mut net = SimNetwork::new(3);
        let smpc = run_smpc(&a, &b, &SmpcConfig::default(), &mut net);
        let mut net2 = SimNetwork::new(3);
        let psop = run_psop(&[a, b], &PsopConfig::default(), &mut net2);
        assert_eq!(smpc.intersection, psop.intersection);
    }

    #[test]
    fn gate_count_is_quadratic() {
        let small = run(&["a", "b"], &["c", "d"]);
        let eight = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let out = {
            let mut net = SimNetwork::new(3);
            run_smpc(
                &strings(&eight),
                &strings(&eight),
                &SmpcConfig::default(),
                &mut net,
            )
        };
        // 4 lanes vs 64 lanes: 16x the AND gates.
        assert_eq!(out.and_gates, 16 * small.and_gates);
    }

    #[test]
    fn traffic_grows_quadratically() {
        // 8×8 = 64 lanes = exactly 1 word; 32×32 = 1024 lanes = 16 words,
        // so a 4x set-size increase must cost ~16x the traffic.
        let mk = |prefix: &str, n: usize| -> Vec<String> {
            (0..n).map(|i| format!("{prefix}{i}")).collect()
        };
        let mut net8 = SimNetwork::new(3);
        let n8 = run_smpc(&mk("a", 8), &mk("b", 8), &SmpcConfig::default(), &mut net8);
        let mut net32 = SimNetwork::new(3);
        let n32 = run_smpc(
            &mk("a", 32),
            &mk("b", 32),
            &SmpcConfig::default(),
            &mut net32,
        );
        let ratio = n32.traffic.total_bytes() as f64 / n8.traffic.total_bytes() as f64;
        assert!(
            (12.0..=20.0).contains(&ratio),
            "expected ~16x traffic growth, got {ratio:.1}x"
        );
    }

    #[test]
    fn hash_collision_caveat_is_bounded() {
        // With 32-bit hashes and small sets, false positives are ~0; this
        // guards the default configuration.
        let a: Vec<String> = (0..50).map(|i| format!("left-{i}")).collect();
        let b: Vec<String> = (0..50).map(|i| format!("right-{i}")).collect();
        let mut net = SimNetwork::new(3);
        let out = run_smpc(&a, &b, &SmpcConfig::default(), &mut net);
        assert_eq!(out.intersection, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        let _ = run(&[], &["a"]);
    }
}
