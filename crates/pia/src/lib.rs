//! Private independence auditing (PIA, §4.2 of the paper).
//!
//! PIA quantifies the independence of redundancy deployments across
//! *mutually distrustful* cloud providers: nobody reveals their component
//! sets, yet everyone learns the Jaccard similarity of the deployments.
//!
//! * [`normalize`] — canonical component identifiers so the same
//!   third-party router or software package hashes identically at every
//!   provider (§4.2.3),
//! * [`jaccard`] — exact Jaccard similarity across k sets (§4.2.2),
//! * [`minhash`] — MinHash compression with m seeded hash functions and the
//!   O(1/√m) estimator (§4.2.2),
//! * [`psop`] — the P-SOP private set-intersection-cardinality protocol
//!   over commutative encryption, run on the simulated network with full
//!   traffic accounting (§4.2.2, §4.2.4),
//! * [`ks`] — a Kissner–Song-style Paillier baseline used by the paper's
//!   Figure 8 comparison (§6.3.2),
//! * [`report`] — ranking candidate redundancy deployments by Jaccard
//!   similarity, as in Table 2 (§4.2.5).

pub mod audit_trail;
pub mod jaccard;
pub mod ks;
pub mod minhash;
pub mod normalize;
pub mod psop;
pub mod report;
pub mod smpc;

pub use audit_trail::{AuditTrail, MetaAuditError, SignedRecord};
pub use jaccard::{jaccard_exact, jaccard_of_pair};
pub use ks::{run_ks, KsConfig, KsOutcome};
pub use minhash::{estimate_jaccard, minhash_signature};
pub use normalize::normalize_component;
pub use psop::{
    count_final_lists, outcome_from_counts, run_psop, run_psop_party, run_psop_transport,
    PsopConfig, PsopOutcome, PsopParty, CIPHERTEXT_BYTES,
};
pub use report::{rank_deployments, rank_deployments_cancellable, PiaRanking};
pub use smpc::{run_smpc, run_smpc_transport, SmpcConfig, SmpcOutcome};
