//! Exact Jaccard similarity across k datasets (§4.2.2).
//!
//! `J(S₀,…,S_{k−1}) = |S₀ ∩ … ∩ S_{k−1}| / |S₀ ∪ … ∪ S_{k−1}|`. A value
//! near 1 means the deployments share most dependencies; near 0 means they
//! are almost disjoint. The paper treats `J ≥ 0.75` as significantly
//! correlated [62].

use std::collections::BTreeSet;

/// Jaccard similarity threshold above which datasets are considered
/// significantly correlated (per Walsh & Sirer [62], cited in §4.2.2).
pub const SIGNIFICANT_CORRELATION: f64 = 0.75;

/// Computes the exact Jaccard similarity across `sets`.
///
/// Returns 0.0 for the degenerate all-empty case.
///
/// # Panics
///
/// Panics if `sets` is empty.
pub fn jaccard_exact<T: Ord>(sets: &[BTreeSet<T>]) -> f64 {
    assert!(!sets.is_empty(), "need at least one set");
    let union: usize = {
        let mut u = BTreeSet::new();
        for s in sets {
            for e in s {
                u.insert(e);
            }
        }
        u.len()
    };
    if union == 0 {
        return 0.0;
    }
    let inter = sets[0]
        .iter()
        .filter(|e| sets[1..].iter().all(|s| s.contains(e)))
        .count();
    inter as f64 / union as f64
}

/// Convenience: Jaccard of two string slices.
pub fn jaccard_of_pair(a: &[String], b: &[String]) -> f64 {
    let sa: BTreeSet<&String> = a.iter().collect();
    let sb: BTreeSet<&String> = b.iter().collect();
    jaccard_exact(&[sa, sb])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_are_1() {
        let s = set(&["a", "b"]);
        assert_eq!(jaccard_exact(&[s.clone(), s]), 1.0);
    }

    #[test]
    fn disjoint_sets_are_0() {
        assert_eq!(jaccard_exact(&[set(&["a"]), set(&["b"])]), 0.0);
    }

    #[test]
    fn halves_overlap() {
        // {a,b} vs {b,c}: |∩|=1, |∪|=3.
        let j = jaccard_exact(&[set(&["a", "b"]), set(&["b", "c"])]);
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_way_intersection() {
        let j = jaccard_exact(&[
            set(&["x", "a", "b"]),
            set(&["x", "b", "c"]),
            set(&["x", "c", "a"]),
        ]);
        // ∩ = {x}; ∪ = {x,a,b,c}.
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_empty_is_0() {
        let e: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard_exact(&[e.clone(), e]), 0.0);
    }

    #[test]
    fn pair_helper_matches() {
        let a = vec!["a".to_string(), "b".to_string()];
        let b = vec!["b".to_string(), "c".to_string()];
        assert!((jaccard_of_pair(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_overlap() {
        let base = set(&["a", "b", "c", "d"]);
        let close = set(&["a", "b", "c", "e"]);
        let far = set(&["a", "x", "y", "z"]);
        assert!(
            jaccard_exact(&[base.clone(), close]) > jaccard_exact(&[base, far]),
            "more overlap must mean higher similarity"
        );
    }
}
