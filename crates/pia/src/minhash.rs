//! MinHash approximation of Jaccard similarity (§4.2.2).
//!
//! For large component sets, each provider condenses its set into an
//! m-slot MinHash signature: slot `i` holds the element minimizing the
//! `i`-th seeded hash function. The Jaccard similarity is estimated as
//! `δ/m`, where `δ` counts slots on which *all* k signatures agree; the
//! expected error is O(1/√m) (Broder [13]).
//!
//! For private use, each slot is fed to P-SOP as the element tagged with
//! its slot index (`slot‖element`), so ciphertext equality compares
//! signatures slot-wise — exactly the `δ/m` estimator.

use indaas_crypto::Hash64;

/// Computes the m-slot MinHash signature of a set of components.
///
/// Each slot stores the 64-bit hash value of the minimizing element (value
/// equality is what the estimator compares).
///
/// # Panics
///
/// Panics if `m` is zero or the set is empty.
pub fn minhash_signature(set: &[String], m: usize) -> Vec<u64> {
    assert!(m > 0, "need at least one hash function");
    assert!(!set.is_empty(), "cannot sign an empty set");
    let family = Hash64::family(m);
    family
        .iter()
        .map(|h| {
            set.iter()
                .map(|e| h.hash(e.as_bytes()))
                .min()
                .expect("non-empty set")
        })
        .collect()
}

/// Estimates the k-way Jaccard similarity from signatures: `δ/m`.
///
/// # Panics
///
/// Panics if `signatures` is empty or lengths differ.
pub fn estimate_jaccard(signatures: &[Vec<u64>]) -> f64 {
    assert!(!signatures.is_empty(), "need at least one signature");
    let m = signatures[0].len();
    assert!(
        signatures.iter().all(|s| s.len() == m),
        "signatures must have equal length"
    );
    let delta = (0..m)
        .filter(|&i| signatures[1..].iter().all(|s| s[i] == signatures[0][i]))
        .count();
    delta as f64 / m as f64
}

/// The P-SOP-ready encoding of a signature: slot-tagged string elements,
/// so set intersection across providers counts slot-wise agreements.
pub fn signature_elements(signature: &[u64]) -> Vec<String> {
    signature
        .iter()
        .enumerate()
        .map(|(slot, v)| format!("{slot}:{v:016x}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::jaccard_exact;
    use std::collections::BTreeSet;

    fn strings(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}-{i}")).collect()
    }

    #[test]
    fn identical_sets_estimate_1() {
        let s = strings("pkg", 50);
        let a = minhash_signature(&s, 64);
        let b = minhash_signature(&s, 64);
        assert_eq!(estimate_jaccard(&[a, b]), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_0() {
        let a = minhash_signature(&strings("a", 50), 128);
        let b = minhash_signature(&strings("b", 50), 128);
        let est = estimate_jaccard(&[a, b]);
        assert!(est < 0.05, "disjoint estimate {est} should be ~0");
    }

    #[test]
    fn estimate_tracks_exact_within_error_bound() {
        // Two sets with true J = 50/150 = 1/3; m = 256 gives error ~1/16.
        let mut a = strings("shared", 50);
        a.extend(strings("only-a", 50));
        let mut b = strings("shared", 50);
        b.extend(strings("only-b", 50));
        let exact = {
            let sa: BTreeSet<String> = a.iter().cloned().collect();
            let sb: BTreeSet<String> = b.iter().cloned().collect();
            jaccard_exact(&[sa, sb])
        };
        let est = estimate_jaccard(&[minhash_signature(&a, 256), minhash_signature(&b, 256)]);
        assert!(
            (est - exact).abs() < 0.12,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn more_hashes_reduce_error() {
        // Average absolute error over shifted set pairs must shrink with m.
        let err_for = |m: usize| -> f64 {
            let mut total = 0.0;
            for shift in 0..8 {
                let a: Vec<String> = (0..60).map(|i| format!("e{i}")).collect();
                let b: Vec<String> = (shift * 5..60 + shift * 5)
                    .map(|i| format!("e{i}"))
                    .collect();
                let exact = {
                    let sa: BTreeSet<String> = a.iter().cloned().collect();
                    let sb: BTreeSet<String> = b.iter().cloned().collect();
                    jaccard_exact(&[sa, sb])
                };
                let est = estimate_jaccard(&[minhash_signature(&a, m), minhash_signature(&b, m)]);
                total += (est - exact).abs();
            }
            total / 8.0
        };
        assert!(err_for(512) < err_for(16) + 0.02);
    }

    #[test]
    fn three_way_estimation() {
        let shared = strings("s", 30);
        let mk = |extra: &str| {
            let mut v = shared.clone();
            v.extend(strings(extra, 30));
            v
        };
        let sigs = vec![
            minhash_signature(&mk("a"), 256),
            minhash_signature(&mk("b"), 256),
            minhash_signature(&mk("c"), 256),
        ];
        let est = estimate_jaccard(&sigs);
        // True J = 30 / 120 = 0.25.
        assert!((est - 0.25).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn signature_elements_are_slot_tagged() {
        let sig = vec![1u64, 2, 3];
        let elems = signature_elements(&sig);
        assert_eq!(elems.len(), 3);
        assert!(elems[0].starts_with("0:"));
        assert!(elems[2].starts_with("2:"));
        // Same value in different slots must NOT collide.
        let sig2 = vec![1u64, 1];
        let e2 = signature_elements(&sig2);
        assert_ne!(e2[0], e2[1]);
    }

    #[test]
    #[should_panic(expected = "cannot sign an empty set")]
    fn empty_set_rejected() {
        let _ = minhash_signature(&[], 4);
    }
}
