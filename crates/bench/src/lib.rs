//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! Each `repro_*` binary in `src/bin/` prints the rows/series of one paper
//! artifact; the Criterion benches in `benches/` provide statistically
//! sound micro-timings of the same code paths. EXPERIMENTS.md records
//! paper-vs-measured for each.

use std::time::Instant;

use indaas_core::CandidateDeployment;
use indaas_deps::DepDb;
use indaas_topology::{FatTree, FatTreeConfig};

/// Wall-clock timing helper.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The Figure 7 workload: a `num_servers`-way redundancy deployment across
/// distinct pods of a fat tree, with full network/hardware/software
/// dependency records. Returns the populated DepDB and the candidate
/// deployment.
///
/// `max_paths` caps per-server ECMP path enumeration (Table 3's topology C
/// has 576 paths per server; the paper materializes all of them, which is
/// also the default here — pass a cap to scale down).
pub fn fig7_workload(
    config: FatTreeConfig,
    num_servers: usize,
    max_paths: Option<usize>,
) -> (DepDb, CandidateDeployment) {
    let tree = FatTree::new(FatTreeConfig {
        max_paths_per_server: max_paths.or(config.max_paths_per_server),
        ..config
    });
    assert!(
        num_servers <= tree.config().ports,
        "one server per pod at most"
    );
    // One server per pod, first ToR, first slot.
    let coords: Vec<(usize, usize, usize)> = (0..num_servers).map(|p| (p, 0, 0)).collect();
    let records = tree.deployment_records(&coords);
    let servers: Vec<String> = coords
        .iter()
        .map(|&(p, e, s)| tree.server_name(p, e, s))
        .collect();
    let name = format!(
        "{}-way deployment on {} ({} devices)",
        num_servers,
        match tree.config().ports {
            16 => "topology A",
            24 => "topology B",
            48 => "topology C",
            p =>
                return (
                    DepDb::from_records(records),
                    CandidateDeployment::replicated(
                        format!("{num_servers}-way on {p}-port fat tree"),
                        servers
                    )
                ),
        },
        tree.total_devices()
    );
    (
        DepDb::from_records(records),
        CandidateDeployment::replicated(name, servers),
    )
}

/// Synthetic provider component sets for Figures 8 and 9: `n` elements per
/// provider, a `shared` fraction drawn from a common pool (so intersections
/// are non-trivial and the KS chain runs all rounds).
pub fn synthetic_datasets(k: usize, n: usize, shared: f64) -> Vec<Vec<String>> {
    assert!((0.0..=1.0).contains(&shared));
    let n_shared = (n as f64 * shared) as usize;
    (0..k)
        .map(|p| {
            let mut v: Vec<String> = (0..n_shared).map(|i| format!("shared-{i}")).collect();
            v.extend((n_shared..n).map(|i| format!("p{p}-local-{i}")));
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_workload_shapes() {
        let (db, cand) = fig7_workload(
            FatTreeConfig {
                ports: 4,
                max_paths_per_server: None,
            },
            3,
            None,
        );
        assert_eq!(cand.servers.len(), 3);
        for s in &cand.servers {
            assert_eq!(db.network_deps(s).len(), 4); // (k/2)^2 paths.
            assert_eq!(db.hardware_deps(s).len(), 2);
            assert_eq!(db.software_deps(s).len(), 1);
        }
    }

    #[test]
    fn synthetic_datasets_overlap() {
        let sets = synthetic_datasets(3, 100, 0.4);
        assert_eq!(sets.len(), 3);
        for s in &sets {
            assert_eq!(s.len(), 100);
        }
        let shared: Vec<_> = sets[0].iter().filter(|e| e.starts_with("shared")).collect();
        assert_eq!(shared.len(), 40);
        assert!(sets[1].contains(&"shared-0".to_string()));
        assert!(!sets[1].contains(&"p0-local-50".to_string()));
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
