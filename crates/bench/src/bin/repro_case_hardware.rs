//! Regenerates the §6.2.2 common hardware dependency case study
//! (Figure 6b): the top-4 risk groups of the mis-deployed Riak service in
//! the lab IaaS cloud.
//!
//! Paper's top-4 RG ranking: {Server2}, {Switch1}, {Core1 & Core2},
//! {VM7 & VM8} — reproduced here exactly.
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_case_hardware`

use indaas_core::{AuditSpec, AuditingAgent, CandidateDeployment};
use indaas_deps::DepDb;
use indaas_topology::IaasLab;

fn main() {
    let lab = IaasLab::new(2014);
    let agent = AuditingAgent::new(DepDb::from_records(lab.records()));
    let spec = AuditSpec {
        software: false, // The case study audits hardware + network.
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
            "Riak on VM7 + VM8",
            [lab.vm_name(7), lab.vm_name(8)],
        )])
    };
    let report = agent.audit_sia(&spec).expect("audit succeeds");
    let audit = &report.deployments[0];

    println!("=== §6.2.2 common hardware dependency (measured) ===");
    for (i, rg) in audit.ranked_rgs.iter().take(4).enumerate() {
        println!("RG{}: {{{}}}", i + 1, rg.events.join(" & "));
    }
    println!("\n=== paper ===");
    println!("RG1: {{Server2}}\nRG2: {{Switch1}}\nRG3: {{Core1 & Core2}}\nRG4: {{VM7 & VM8}}");

    // Exact reproduction check (ties among equal-size RGs are ordered
    // deterministically by name in this implementation).
    let top4: Vec<Vec<String>> = audit
        .ranked_rgs
        .iter()
        .take(4)
        .map(|rg| rg.events.clone())
        .collect();
    assert!(top4.contains(&vec!["Server2".to_string()]));
    assert!(top4.contains(&vec!["Switch1".to_string()]));
    assert!(top4.contains(&vec!["Core1".to_string(), "Core2".to_string()]));
    assert!(top4.contains(&vec!["VM7".to_string(), "VM8".to_string()]));
    println!("\ntop-4 risk groups match the paper exactly");
}
