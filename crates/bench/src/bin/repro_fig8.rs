//! Regenerates Figure 8: P-SOP vs Kissner–Song (KS) system overheads.
//!
//! (a) bandwidth overhead — total traffic sent per protocol run, from the
//!     simulated network's byte counters;
//! (b) computational overhead — wall-clock seconds per run.
//!
//! k ∈ {2, 3, 4} providers, n elements per provider. The paper sweeps
//! n = 10³–10⁵; P-SOP here runs the full sweep while KS is measured up to
//! a smaller cap (its homomorphic arithmetic is the point of the
//! comparison — the paper's KS hits 10⁵+ seconds). Both protocols use
//! 1024-bit keys, as in the paper.
//!
//! Scale knobs: `FIG8_PSOP_MAX_N` (default 10000), `FIG8_KS_MAX_N`
//! (default 1000).
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_fig8`

use indaas_bench::{synthetic_datasets, timed};
use indaas_pia::{run_ks, run_psop, KsConfig, PsopConfig};
use indaas_simnet::SimNetwork;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let psop_max = env_or("FIG8_PSOP_MAX_N", 10_000);
    let ks_max = env_or("FIG8_KS_MAX_N", 1_000);
    let sizes = [1_000usize, 3_162, 10_000, 31_623, 100_000];

    println!("=== Figure 8(a,b) — P-SOP ===");
    println!(
        "{:>4} {:>8} {:>16} {:>16} {:>12}",
        "k", "n", "total MB sent", "max MB/provider", "seconds"
    );
    for k in [2usize, 3, 4] {
        for &n in sizes.iter().filter(|&&n| n <= psop_max) {
            let datasets = synthetic_datasets(k, n, 0.3);
            let mut net = SimNetwork::new(k + 1);
            let (out, secs) = timed(|| run_psop(&datasets, &PsopConfig::default(), &mut net));
            println!(
                "{:>4} {:>8} {:>16.2} {:>16.2} {:>12.2}",
                k,
                n,
                out.traffic.total_bytes() as f64 / 1e6,
                out.traffic.max_sent_bytes() as f64 / 1e6,
                secs
            );
        }
    }

    println!("\n=== Figure 8(a,b) — KS baseline ===");
    println!(
        "{:>4} {:>8} {:>16} {:>16} {:>12}",
        "k", "n", "total MB sent", "max MB/provider", "seconds"
    );
    for k in [2usize, 3, 4] {
        for &n in sizes.iter().filter(|&&n| n <= ks_max) {
            let datasets = synthetic_datasets(k, n, 0.3);
            let mut net = SimNetwork::new(k + 1);
            let (out, secs) = timed(|| {
                run_ks(
                    &datasets,
                    &KsConfig {
                        key_bits: 1024,
                        bucket_size: 16,
                        seed: 8,
                    },
                    &mut net,
                )
            });
            println!(
                "{:>4} {:>8} {:>16.2} {:>16.2} {:>12.2}",
                k,
                n,
                out.traffic.total_bytes() as f64 / 1e6,
                out.traffic.max_sent_bytes() as f64 / 1e6,
                secs
            );
        }
    }

    println!(
        "\nshape (as in the paper): both protocols scale ~linearly in n; KS's\n\
         computational overhead sits orders of magnitude above P-SOP's and its\n\
         bandwidth grows faster with the number of providers k."
    );
}
