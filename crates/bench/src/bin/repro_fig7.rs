//! Regenerates Figure 7: efficiency vs accuracy of the minimal-RG
//! algorithm and the failure sampling algorithm on topologies A, B and C.
//!
//! For each topology, a 3-way redundancy deployment (one server per pod,
//! full ECMP path enumeration) is audited:
//!
//! * the *reference universe* is the set of minimal RGs of size ≤ 8,
//!   computed exactly by the truncated minimal-RG algorithm (untruncated
//!   enumeration is exponential — the paper measured 1,046 minutes on
//!   topology B — so, as standard in fault-tree practice, accuracy is
//!   reported against the bounded-order universe; small RGs are exactly
//!   the "unexpected" groups the audit hunts);
//! * the failure sampling algorithm runs with 10³–10⁶ rounds (paper:
//!   10³–10⁷), reporting wall-clock time and the percentage of the
//!   reference universe detected.
//!
//! Scale knob: set `FIG7_MAX_ROUNDS` (default 1000000) to adjust the
//! largest sweep point.
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_fig7`

use indaas_bench::{fig7_workload, timed};
use indaas_graph::FaultGraph;
use indaas_sia::{
    build_fault_graph, failure_sampling, minimal_risk_groups, BuildSpec, MinimalConfig, RgFamily,
    SamplingConfig,
};
use indaas_topology::FatTreeConfig;

/// Reference-universe cut-set order bound. The deployment fails once two
/// replicas are down, so minimal RGs are fleet-wide singletons and cross-
/// server pairs; order 4 bounds the universe exactly.
const TRUTH_ORDER: usize = 4;

fn main() {
    let max_rounds: u64 = std::env::var("FIG7_MAX_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);

    for (label, config) in [
        ("Topology A: 1,344 devices", FatTreeConfig::topology_a()),
        ("Topology B: 4,176 devices", FatTreeConfig::topology_b()),
        ("Topology C: 30,528 devices", FatTreeConfig::topology_c()),
    ] {
        println!("=== Figure 7 — {label} ===");
        // One replica server per pod; the audited service tolerates a
        // single replica failure (fails once ≥ 2 replicas are down).
        let replicas = config.ports;
        let (db, cand) = fig7_workload(config, replicas, None);
        let spec = BuildSpec {
            name: cand.name.clone(),
            servers: cand.servers.clone(),
            needed_alive: replicas - 1,
            network: true,
            hardware: true,
            software: true,
            prob_model: None,
        };
        let graph = build_fault_graph(&db, &spec).expect("fault graph builds");
        println!(
            "fault graph: {} nodes ({} basic events)",
            graph.len(),
            graph.num_basic()
        );

        // Reference universe: exact minimal RGs of size ≤ TRUTH_ORDER.
        let (truth, truth_secs) =
            timed(|| minimal_risk_groups(&graph, &MinimalConfig::with_max_order(TRUTH_ORDER)));
        println!(
            "minimal RG algorithm (order ≤ {TRUTH_ORDER}): {} minimal RGs in {:.2}s  → 100% by definition",
            truth.len(),
            truth_secs
        );

        println!("{:>10} {:>12} {:>12}", "rounds", "seconds", "% detected");
        let mut rounds = 1_000u64;
        while rounds <= max_rounds {
            let (fam, secs) = timed(|| {
                failure_sampling(
                    &graph,
                    &SamplingConfig {
                        rounds,
                        fail_prob: 0.5,
                        seed: 7,
                        threads: std::thread::available_parallelism()
                            .map(|p| p.get())
                            .unwrap_or(1),
                        minimize: true,
                        weighted: false,
                    },
                )
            });
            let pct = detected_pct(&truth, &fam, &graph);
            println!("{rounds:>10} {secs:>12.2} {pct:>11.1}%");
            rounds *= 10;
        }
        println!();
    }
    println!(
        "shape (as in the paper): sampling reaches high coverage orders of magnitude\n\
         faster than exact enumeration, with accuracy growing in the round budget."
    );
}

/// Percentage of the reference universe present in the sampled family.
fn detected_pct(truth: &RgFamily, sampled: &RgFamily, graph: &FaultGraph) -> f64 {
    if truth.is_empty() {
        return 100.0;
    }
    let sampled_named: std::collections::HashSet<Vec<String>> =
        sampled.to_named(graph).into_iter().collect();
    let hit = truth
        .to_named(graph)
        .into_iter()
        .filter(|g| sampled_named.contains(g))
        .count();
    100.0 * hit as f64 / truth.len() as f64
}
