//! Ingest-path benchmark: sharded vs monolithic dependency store.
//!
//! The daemon's hottest write path used to clone the *entire* `DepDb`
//! into a fresh `Arc` on every effective ingest and invalidate the whole
//! audit cache on every epoch bump. The sharded store
//! (`indaas_deps::ShardedDepDb`) re-clones only the shard a batch
//! touched and invalidates only the cache entries pinned to it. This
//! benchmark measures both effects at growing resident sizes:
//!
//! * **ingest latency** — one fresh single-host record into a store
//!   already holding 10k/100k/1M records, timed end to end including
//!   the snapshot refresh (the monolithic baseline is a 1-shard store,
//!   whose per-ingest full clone is exactly the old
//!   `Arc::new(db.clone())` path);
//! * **audit-cache survival** — cache entries pinned across all shards,
//!   then one single-host ingest: the fraction of cached audits still
//!   live afterwards (monolithic: always 0 — every bump evicts
//!   everything).
//!
//! Emits `BENCH_ingest.json` for the CI perf trajectory. `--smoke`
//! shrinks the sizes for the CI gate; full mode covers the 1M point the
//! acceptance criterion reads.
//!
//! ```console
//! $ cargo run --release -p indaas-bench --bin bench_ingest -- \
//!       [--smoke] [--out BENCH_ingest.json] [--shards 16] [--trials 8]
//! ```

use std::time::Instant;

use indaas_deps::{DepView, DependencyRecord, EpochVector, HardwareDep, NetworkDep, ShardedDepDb};
use indaas_service::{job_key, AuditCache};
use serde::Serialize;

/// One fresh, never-before-seen record for `host` (trial-unique `dep`
/// keeps every ingest effective).
fn fresh_record(host: &str, trial: usize) -> DependencyRecord {
    DependencyRecord::Hardware(HardwareDep {
        hw: host.to_string(),
        hw_type: "CPU".to_string(),
        dep: format!("{host}-fresh-{trial}"),
    })
}

/// A synthetic resident set: ~20 records per host (routes + components),
/// the shape of a datacenter inventory rather than one giant host.
fn resident_records(total: usize) -> Vec<DependencyRecord> {
    let per_host = 20;
    let hosts = (total / per_host).max(1);
    let mut out = Vec::with_capacity(total);
    'outer: for h in 0..hosts {
        let host = format!("srv-{h}");
        for r in 0..per_host / 2 {
            if out.len() >= total {
                break 'outer;
            }
            out.push(DependencyRecord::Network(NetworkDep {
                src: host.clone(),
                dst: "Internet".to_string(),
                route: vec![format!("tor-{}", h % 512), format!("core-{r}")],
            }));
        }
        for c in 0..per_host / 2 {
            if out.len() >= total {
                break 'outer;
            }
            out.push(DependencyRecord::Hardware(HardwareDep {
                hw: host.clone(),
                hw_type: "Disk".to_string(),
                dep: format!("{host}-disk-{c}"),
            }));
        }
    }
    out
}

/// Median of a latency sample, in microseconds.
fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    samples[samples.len() / 2]
}

/// Times `trials` single-record ingests (each touching exactly one
/// shard) against a resident store, including the copy-on-write
/// snapshot refresh published after every effective batch (since the
/// per-shard-lock refactor this happens under only the touched shard's
/// own mutex — there is no store-wide write lock left to hold).
fn time_ingests(store: &ShardedDepDb, trials: usize) -> f64 {
    let mut lat = Vec::with_capacity(trials);
    for t in 0..trials {
        let rec = fresh_record(&format!("srv-{}", t % 64), t);
        let start = Instant::now();
        let report = store.ingest([rec]);
        let snapshot = store.snapshot();
        lat.push(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(report.changed, 1, "bench ingests must be effective");
        assert!(snapshot.record_count() > 0);
    }
    median_us(lat)
}

/// Populates an audit cache with one entry per sampled host (pinned to
/// exactly the shards that host reads), ingests one fresh record, purges
/// stale entries, and reports the surviving fraction.
fn cache_survival(store: &ShardedDepDb, entries: usize) -> f64 {
    let mut cache: AuditCache<u64> = AuditCache::new(entries * 2);
    let snapshot = store.snapshot();
    for e in 0..entries {
        let host = format!("srv-{e}");
        let pins = snapshot.pins_for_hosts([host.as_str()]);
        cache.insert(job_key(&pins, "sia", &host), pins, e as u64);
    }
    store.ingest([fresh_record("srv-0", usize::MAX)]);
    cache.purge_stale(&store.epochs());
    cache.len() as f64 / entries as f64
}

#[derive(Serialize)]
struct SizeResult {
    resident_records: usize,
    mono_ingest_us_median: f64,
    sharded_ingest_us_median: f64,
    /// `mono / sharded` — how much cheaper one single-shard ingest got.
    ingest_speedup: f64,
    cache_entries: usize,
    mono_cache_survival: f64,
    sharded_cache_survival: f64,
}

#[derive(Serialize)]
struct BenchReport {
    shards: usize,
    trials: usize,
    smoke: bool,
    results: Vec<SizeResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<usize>().unwrap_or_else(|e| panic!("{name}: {e}")))
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let shards = flag_value("--shards").unwrap_or(16);
    let trials = flag_value("--trials").unwrap_or(if smoke { 5 } else { 9 });
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let sizes: &[usize] = if smoke {
        &[10_000, 50_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let cache_entries = 64;

    let mut results = Vec::new();
    for &size in sizes {
        eprintln!("bench_ingest: building {size}-record resident set...");
        let records = resident_records(size);

        let mono = ShardedDepDb::new(1);
        mono.ingest(records.clone());
        let mono_us = time_ingests(&mono, trials);
        let mono_survival = cache_survival(&mono, cache_entries);

        let sharded = ShardedDepDb::new(shards);
        sharded.ingest(records);
        let sharded_us = time_ingests(&sharded, trials);
        let sharded_survival = cache_survival(&sharded, cache_entries);

        let speedup = mono_us / sharded_us;
        eprintln!(
            "bench_ingest: {size:>9} records | mono {mono_us:>10.1} us | \
             sharded {sharded_us:>8.1} us | speedup {speedup:>5.1}x | \
             cache survival {mono_survival:.2} -> {sharded_survival:.2}"
        );
        results.push(SizeResult {
            resident_records: size,
            mono_ingest_us_median: mono_us,
            sharded_ingest_us_median: sharded_us,
            ingest_speedup: speedup,
            cache_entries,
            mono_cache_survival: mono_survival,
            sharded_cache_survival: sharded_survival,
        });
    }

    // Gates the trajectory depends on, enforced here so the CI smoke
    // step fails loudly on a regression instead of uploading a
    // silently-worse artifact: an ingest to one shard must leave other
    // shards' cached audits alive, and sharded ingest must beat the
    // monolithic full-clone path at the largest measured size — by the
    // acceptance margin (10x) in full mode, and by any margin in smoke
    // mode (small sizes on noisy CI runners leave less headroom).
    let largest = results.last().expect("at least one size");
    assert!(
        largest.sharded_cache_survival > largest.mono_cache_survival,
        "sharding must improve cache survival"
    );
    let required_speedup = if smoke { 1.0 } else { 10.0 };
    assert!(
        largest.ingest_speedup >= required_speedup,
        "sharded ingest speedup {:.1}x at {} records below the {required_speedup}x gate",
        largest.ingest_speedup,
        largest.resident_records
    );

    let report = BenchReport {
        shards,
        trials,
        smoke,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_ingest.json");
    eprintln!("bench_ingest: wrote {out}");

    // Exercise the epoch-vector plumbing once end to end so a broken
    // EpochVector comparison fails the smoke run loudly rather than
    // producing a silently-wrong trajectory.
    let probe = ShardedDepDb::new(shards);
    probe.ingest([fresh_record("probe", 0)]);
    let epochs: EpochVector = probe.epochs();
    assert_eq!(epochs, probe.epochs());
}
