//! Regenerates the §6.2.1 common network dependency case study (Figure 6a):
//! audits all two-way rack deployments of the Benson-style data center,
//! counts deployments free of unexpected risk groups, and cross-checks the
//! winner under uniform 0.1 device failure probabilities.
//!
//! Paper: 190 deployments, 27 without unexpected RGs (14%); the suggested
//! deployment ({Rack 5, Rack 29} on their topology) is also the one with
//! the lowest failure probability. Our generated wiring preserves the
//! shape: a small minority of deployments is clean, and the size-based and
//! probability-based winners coincide.
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_case_network`

use indaas_bench::timed;
use indaas_core::{AuditSpec, AuditingAgent, CandidateDeployment, RankingMetric, RgAlgorithm};
use indaas_deps::{DepDb, FailureProbModel};
use indaas_topology::BensonDatacenter;

fn main() {
    let dc = BensonDatacenter::new();
    let agent = AuditingAgent::new(DepDb::from_records(dc.network_records()));
    let racks = dc.audited_racks();
    let mut candidates = Vec::new();
    for (i, &a) in racks.iter().enumerate() {
        for &b in &racks[i + 1..] {
            candidates.push(CandidateDeployment::replicated(
                format!("Rack {a} + Rack {b}"),
                [dc.server_name(a), dc.server_name(b)],
            ));
        }
    }

    // Failure sampling (paper: 10^6 rounds) + size-based ranking.
    let spec = AuditSpec {
        algorithm: RgAlgorithm::Sampling {
            rounds: 100_000,
            fail_prob: 0.5,
            seed: 2014,
            threads: 1,
        },
        ..AuditSpec::sia_size_based(candidates.clone())
    };
    let (report, secs) = timed(|| agent.audit_sia(&spec).expect("audit succeeds"));
    let clean = report
        .deployments
        .iter()
        .filter(|d| d.unexpected_rgs == 0)
        .count();

    println!("=== §6.2.1 common network dependency (measured) ===");
    println!("two-way deployments audited : {}", report.deployments.len());
    println!(
        "without unexpected RGs      : {} ({:.0}%)",
        clean,
        100.0 * clean as f64 / report.deployments.len() as f64
    );
    println!(
        "suggested deployment        : {}",
        report.best().unwrap().name
    );
    println!("audit wall-clock            : {secs:.2}s (10^5 sampling rounds)");

    // Probability cross-check: every device fails with probability 0.1.
    let prob_spec = AuditSpec {
        algorithm: RgAlgorithm::Minimal { max_order: Some(4) },
        metric: RankingMetric::Probability { default_prob: 0.1 },
        prob_model: Some(FailureProbModel::new(0.1)),
        ..AuditSpec::sia_size_based(candidates)
    };
    let prob_report = agent.audit_sia(&prob_spec).expect("audit succeeds");
    let prob_best = prob_report.best().unwrap();
    println!(
        "lowest-Pr(outage) deployment: {} (Pr = {:.4})",
        prob_best.name,
        prob_best.failure_probability.unwrap()
    );

    println!("\n=== paper ===");
    println!("190 deployments; 27 (14%) without unexpected RGs;");
    println!("suggested {{Rack 5, Rack 29}} also minimizes failure probability at p=0.1");

    assert_eq!(report.deployments.len(), 190);
    assert!(
        clean * 4 < report.deployments.len(),
        "only a minority of deployments may avoid unexpected RGs"
    );
    assert_eq!(report.best().unwrap().unexpected_rgs, 0);
    assert_eq!(
        prob_best.unexpected_rgs, 0,
        "probability winner must be clean too"
    );
    println!("\nshape matches: clean deployments are a small minority; winners are clean");
}
