//! Concurrency benchmark: per-shard write locks + wait-free snapshot
//! reads vs the old single-`RwLock` store discipline.
//!
//! The daemon used to keep the whole sharded store under one
//! `RwLock<ShardedDepDb>`: concurrent ingests to *different* shards
//! serialized on the write lock, and every audit's `snapshot()` call
//! contended with writers (a steady stream of audit admissions can
//! starve the write path entirely). The store now locks per shard and
//! publishes snapshots through atomic pointer swaps, so this benchmark
//! measures both effects directly:
//!
//! * **disjoint-shard ingest throughput** — N writer threads, each
//!   mutating its own shard (alternating effective ingest/retract so
//!   the resident size stays fixed), racing M audit-reader threads that
//!   continuously pin snapshots. The *global* mode wraps the very same
//!   store in a `RwLock` and takes `write()`/`read()` exactly where the
//!   old server did; the *sharded* mode calls the store directly.
//! * **audit-reader p99 latency** — one reader timing every
//!   snapshot-and-read operation, idle vs with writers hammering
//!   *other* shards. Per-shard locking must leave the reader
//!   unaffected; the global write lock must not.
//! * **instrumentation overhead** — the same sharded writer/reader race
//!   with the daemon's per-mutation observability hooks live (a counter
//!   bump and a latency-span record per write, exactly what the serve
//!   path does) vs without. Best-of-3 each; instrumented throughput
//!   must stay within 2% of plain, and the instrumented reader p99 must
//!   hold the same wait-free band the uninstrumented one is gated on.
//!
//! Emits `BENCH_concurrency.json`. `--smoke` shrinks durations for the
//! CI gate; full mode is the committed trajectory point. The binary
//! asserts the acceptance gates itself so a regression fails loudly.
//!
//! ```console
//! $ cargo run --release -p indaas-bench --bin bench_concurrency -- \
//!       [--smoke] [--out BENCH_concurrency.json] [--shards 8] [--readers 16]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use indaas_core::{AuditSpec, CandidateDeployment};
use indaas_deps::{shard_index, DepView, DependencyRecord, HardwareDep, NetworkDep, ShardedDepDb};
use indaas_obs::{Counter, Histo, Registry, Span};
use indaas_service::proto::{
    decode_line, encode_line, read_frame, write_frame, Envelope, FrameRead, Request, Response,
    ResponseEnvelope,
};
use indaas_service::{Client, ServeConfig, Server};
use serde::Serialize;

/// How the benchmark drives the store: through one global `RwLock`
/// (the old server discipline) or directly (per-shard locks inside).
#[derive(Clone, Copy, PartialEq, Eq)]
enum LockMode {
    GlobalRwLock,
    PerShard,
}

/// `count` hosts that all route to `shard` of an `shards`-shard store.
fn hosts_of_shard(shard: usize, shards: usize, count: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(count);
    for i in 0.. {
        let host = format!("srv-{i}");
        if shard_index(&host, shards) == shard {
            out.push(host);
            if out.len() == count {
                return out;
            }
        }
    }
    unreachable!("host generator is infinite");
}

/// A fresh, effective record for `host`. The writer id keeps records
/// distinct even when two writers share a shard (and therefore a host
/// pool), as happens with more writers than shards.
fn fresh_record(host: &str, writer: usize, tag: u64) -> DependencyRecord {
    DependencyRecord::Hardware(HardwareDep {
        hw: host.to_string(),
        hw_type: "CPU".to_string(),
        dep: format!("{host}-w{writer}-{tag}"),
    })
}

/// Seeds every shard with `per_shard` resident records so each
/// effective write pays a realistic copy-on-write snapshot re-clone.
fn seed(store: &ShardedDepDb, shards: usize, per_shard: usize) {
    let mut records = Vec::with_capacity(shards * per_shard);
    for s in 0..shards {
        for host in hosts_of_shard(s, shards, per_shard / 4) {
            records.push(DependencyRecord::Network(NetworkDep {
                src: host.clone(),
                dst: "Internet".to_string(),
                route: vec![format!("tor-{s}"), "core-1".to_string()],
            }));
            for c in 0..3 {
                records.push(DependencyRecord::Hardware(HardwareDep {
                    hw: host.clone(),
                    hw_type: "Disk".to_string(),
                    dep: format!("{host}-disk-{c}"),
                }));
            }
        }
    }
    store.ingest(records);
}

/// The daemon's per-mutation observability hooks, as the serve path
/// wires them: one counter bump plus one latency-span record per write.
struct ObsHooks {
    mutations: Arc<Counter>,
    ingest_us: Arc<Histo>,
}

impl ObsHooks {
    fn new(registry: &Registry) -> Self {
        ObsHooks {
            mutations: registry.counter(indaas_service::names::MUTATIONS_TOTAL),
            ingest_us: registry.histo(indaas_service::names::INGEST_US),
        }
    }
}

/// One writer's inner loop: alternate an effective single-record ingest
/// with its retraction, so every op bumps the shard epoch and republishes
/// the snapshot while the resident size stays fixed. With `obs` set,
/// every op also pays the daemon's write-path instrumentation. Returns
/// ops done.
fn write_ops(
    store: &RwLock<ShardedDepDb>,
    mode: LockMode,
    writer: usize,
    hosts: &[String],
    stop: &AtomicBool,
    obs: Option<&ObsHooks>,
) -> u64 {
    let mut ops = 0u64;
    let mut pending: Option<DependencyRecord> = None;
    while !stop.load(Ordering::Relaxed) {
        let span = obs.map(|hooks| {
            hooks.mutations.inc();
            Span::start(Arc::clone(&hooks.ingest_us))
        });
        match pending.take() {
            Some(record) => {
                let batch = [record];
                let report = match mode {
                    LockMode::GlobalRwLock => store.write().expect("store lock").retract(&batch),
                    LockMode::PerShard => store.read().expect("store lock").retract(&batch),
                };
                assert_eq!(report.changed, 1, "bench retracts must be effective");
            }
            None => {
                let record = fresh_record(&hosts[(ops as usize / 2) % hosts.len()], writer, ops);
                pending = Some(record.clone());
                let report = match mode {
                    LockMode::GlobalRwLock => store.write().expect("store lock").ingest([record]),
                    LockMode::PerShard => store.read().expect("store lock").ingest([record]),
                };
                assert_eq!(report.changed, 1, "bench ingests must be effective");
            }
        }
        drop(span);
        ops += 1;
    }
    ops
}

/// One audit-admission read: pin a snapshot (the wait-free path in
/// sharded mode, `read()` + snapshot under the old discipline) and
/// resolve the pins + component set the audit would read.
fn read_op(store: &RwLock<ShardedDepDb>, mode: LockMode, host: &str) -> usize {
    let snapshot = match mode {
        LockMode::GlobalRwLock => store.read().expect("store lock").snapshot(),
        LockMode::PerShard => {
            // The `read()` here is the *benchmark harness'* handle, not
            // the discipline under test: in per-shard mode writers also
            // go through `read()`, so this never blocks on anything.
            store.read().expect("store lock").snapshot()
        }
    };
    let pins = snapshot.pins_for_hosts([host]);
    pins.len() + snapshot.component_set_of(host).len()
}

/// Runs `writers` disjoint-shard writer threads plus `readers` audit
/// readers for `duration`, returning total writer ops/sec.
fn throughput(
    store: &RwLock<ShardedDepDb>,
    mode: LockMode,
    shards: usize,
    writers: usize,
    readers: usize,
    duration: Duration,
    obs: Option<&ObsHooks>,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let pools: Vec<Vec<String>> = (0..writers)
        .map(|w| hosts_of_shard(w % shards, shards, 8))
        .collect();
    let read_hosts: Vec<String> = (0..shards)
        .map(|s| hosts_of_shard(s, shards, 1).remove(0))
        .collect();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (w, pool) in pools.iter().enumerate() {
            let (stop, total) = (&stop, &total);
            scope.spawn(move || {
                let ops = write_ops(store, mode, w, pool, stop, obs);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        for r in 0..readers {
            let stop = &stop;
            let host = &read_hosts[r % read_hosts.len()];
            scope.spawn(move || {
                let mut acc = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    acc ^= read_op(store, mode, host);
                }
                std::hint::black_box(acc);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
}

/// p99 of one reader's per-op latency (µs), with `writers` threads
/// hammering shards *other than* the reader's.
fn reader_p99_us(
    store: &RwLock<ShardedDepDb>,
    mode: LockMode,
    shards: usize,
    writers: usize,
    duration: Duration,
    obs: Option<&ObsHooks>,
) -> f64 {
    let stop = AtomicBool::new(false);
    // The reader pins shard 0; writers cycle through shards 1.. —
    // strictly other-shard traffic (callers guarantee `writers == 0`
    // when there is no other shard to put them on).
    assert!(
        writers == 0 || shards >= 2,
        "other-shard writers need a second shard"
    );
    let read_host = hosts_of_shard(0, shards, 1).remove(0);
    let pools: Vec<Vec<String>> = (0..writers)
        .map(|w| hosts_of_shard(1 + w % (shards.max(2) - 1), shards, 8))
        .collect();
    let mut samples: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        for (w, pool) in pools.iter().enumerate() {
            let stop = &stop;
            scope.spawn(move || {
                write_ops(store, mode, w, pool, stop, obs);
            });
        }
        let deadline = Instant::now() + duration;
        samples.reserve(1 << 20);
        while Instant::now() < deadline {
            let t = Instant::now();
            std::hint::black_box(read_op(store, mode, &read_host));
            samples.push(t.elapsed().as_nanos() as u64);
        }
        stop.store(true, Ordering::Relaxed);
    });
    samples.sort_unstable();
    samples[samples.len() * 99 / 100] as f64 / 1e3
}

#[derive(Serialize)]
struct ThroughputPoint {
    writers: usize,
    global_ops_per_sec: f64,
    sharded_ops_per_sec: f64,
    /// `sharded / global` — how much ingest throughput per-shard
    /// locking buys over the single write lock at this writer count.
    speedup: f64,
}

#[derive(Serialize)]
struct ReaderLatency {
    /// p99 of one audit reader's snapshot-and-read op, µs, no writers.
    global_idle_p99_us: f64,
    /// Same reader with writers on *other* shards, old discipline: the
    /// global write lock stalls it.
    global_loaded_p99_us: f64,
    /// Wait-free path, idle.
    sharded_idle_p99_us: f64,
    /// Wait-free path with other-shard writers: must stay in the same
    /// band as idle — readers never block on writers.
    sharded_loaded_p99_us: f64,
}

#[derive(Serialize)]
struct InstrumentationOverhead {
    /// Best-of-3 sharded ingest throughput, no instrumentation.
    plain_ops_per_sec: f64,
    /// Best-of-3 with the daemon's write-path hooks live (counter bump
    /// + latency-span record per op).
    instrumented_ops_per_sec: f64,
    /// Best per-round paired `instrumented / plain` ratio — the gate
    /// demands ≥ 0.98 (≤ 2% cost).
    ratio: f64,
    /// Wait-free reader p99 with instrumented other-shard writers, µs.
    instrumented_reader_p99_us: f64,
}

#[derive(Serialize)]
struct ConnScalingPoint {
    /// Idle v2 subscriber connections held open against the daemon.
    connections: usize,
    /// Whole-process OS thread count (`/proc/self/status` `Threads:`,
    /// server in-process) with all `connections` subscribers idle.
    os_threads: usize,
    /// Whole-process resident set (`VmRSS:`), KiB.
    vm_rss_kib: u64,
    /// p99 round-trip of a cached `AuditSia` on a separate control
    /// connection while the subscribers idle, µs — the dashboard-query
    /// latency the fan-out must not regress.
    audit_p99_us: f64,
}

#[derive(Serialize)]
struct ConnScaling {
    /// True when captured with `--conn-baseline` (pre-readiness-loop
    /// thread-per-connection server; scaling gates skipped).
    baseline_mode: bool,
    /// Process thread count before the first subscriber connects.
    idle_threads: usize,
    /// Reference audit p99 at 64 connections measured against the
    /// thread-per-connection server before the readiness-loop rewrite
    /// ([`THREADED_BASELINE_AUDIT_P99_US`]).
    threaded_baseline_audit_p99_us: f64,
    points: Vec<ConnScalingPoint>,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    shards: usize,
    readers: usize,
    resident_per_shard: usize,
    duration_ms: u64,
    throughput: Vec<ThroughputPoint>,
    reader_latency: ReaderLatency,
    instrumentation: InstrumentationOverhead,
    connection_scaling: ConnScaling,
}

/// Audit p99 at 64 idle connections against the *thread-per-connection*
/// server, captured with `--conn-baseline` on the trajectory machine
/// immediately before the readiness-loop rewrite. The full-mode gate
/// holds the loop server within 2x of this on the same machine class;
/// smoke mode records but does not gate latency (CI runners vary).
/// Captured 2026-08-07: 64 conns cost 135 threads / 36.6 MiB RSS and a
/// 439.4 us audit p99; 1024 conns cost 2055 threads / 73.0 MiB.
const THREADED_BASELINE_AUDIT_P99_US: f64 = 439.4;

/// Table-1 records the connection-scaling daemon serves audits over.
const CONN_RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S1" dst="Internet" route="tor1,core2"/>
    <src="S2" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core1"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
    <hw="S1" type="Disk" dep="S1-disk"/>
    <hw="S2" type="Disk" dep="S2-disk"/>
    <hw="S3" type="Disk" dep="S3-disk"/>
"#;

/// `Threads:` and `VmRSS:` (KiB) from `/proc/self/status`.
fn proc_threads_and_rss() -> (usize, u64) {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    let field = |name: &str| {
        status
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("{name} missing from /proc/self/status"))
    };
    (field("Threads:") as usize, field("VmRSS:"))
}

/// Opens one raw-socket v2 session, subscribes to `spec`, and waits for
/// both the `Subscribed` ack and the initial `AuditEvent` push — after
/// this returns the daemon holds whatever per-connection state an idle
/// subscriber costs it. The returned reader keeps the socket open.
fn open_idle_subscriber(addr: SocketAddr, spec: &AuditSpec) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect subscriber");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream);
    reader
        .get_ref()
        .write_all(format!("{}\n", encode_line(&Request::Hello { version: 2 })).as_bytes())
        .expect("send hello");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read welcome");
    assert!(line.contains("Welcome"), "handshake answered: {line}");
    let envelope = Envelope {
        id: 1,
        body: Request::Subscribe {
            spec: spec.clone(),
            engine: "sia".to_string(),
        },
        trace: None,
    };
    write_frame(&mut reader.get_ref(), encode_line(&envelope).as_bytes()).expect("send subscribe");
    let mut buf = Vec::new();
    let mut acked = false;
    let mut pushed = false;
    while !(acked && pushed) {
        match read_frame(&mut reader, &mut buf, 16 * 1024 * 1024).expect("read frame") {
            FrameRead::Frame => {}
            other => panic!("subscriber stream ended during setup: {other:?}"),
        }
        let resp: ResponseEnvelope =
            decode_line(std::str::from_utf8(&buf).expect("utf8 frame")).expect("decode frame");
        match (resp.id, resp.body) {
            (1, Response::Subscribed { .. }) => acked = true,
            (0, Response::AuditEvent { .. }) => pushed = true,
            (id, body) => panic!("unexpected setup frame id {id}: {body:?}"),
        }
    }
    reader
}

/// p99 round-trip (µs) of `samples` cached audits on the control client.
fn audit_p99_us(client: &mut Client, spec: &AuditSpec, samples: usize) -> f64 {
    let mut lat: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let answer = client.audit_sia(spec, None).expect("audit");
        lat.push(t.elapsed().as_nanos() as u64);
        assert!(answer.cached, "scaling-phase audits must be cache hits");
    }
    lat.sort_unstable();
    lat[lat.len() * 99 / 100] as f64 / 1e3
}

/// Boots an in-process daemon, holds N idle v2 subscribers at each
/// level (cumulative — connections stay open as the level grows), and
/// samples thread count, RSS, and control-path audit p99 at each level.
fn connection_scaling(smoke: bool, baseline: bool) -> ConnScaling {
    let levels: &[usize] = if smoke { &[16, 64] } else { &[64, 256, 1024] };
    let p99_samples = if smoke { 100 } else { 400 };
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 256,
        max_conns: 2048,
        ..ServeConfig::default()
    })
    .expect("bind scaling daemon");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect control");
    client.ingest(CONN_RECORDS).expect("ingest");
    let spec = AuditSpec::sia_size_based(vec![
        CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
        CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
    ]);
    // Warm the result cache so every timed round-trip below measures
    // the wire + dispatch path, not BDD compilation.
    client.audit_sia(&spec, None).expect("warm audit");

    let (idle_threads, _) = proc_threads_and_rss();
    let mut subscribers: Vec<BufReader<TcpStream>> = Vec::new();
    let mut points = Vec::new();
    for &level in levels {
        while subscribers.len() < level {
            subscribers.push(open_idle_subscriber(addr, &spec));
        }
        let (os_threads, vm_rss_kib) = proc_threads_and_rss();
        let p99 = audit_p99_us(&mut client, &spec, p99_samples);
        eprintln!(
            "bench_concurrency: {level:>4} idle subscribers | {os_threads:>5} threads | \
             {vm_rss_kib:>7} KiB RSS | audit p99 {p99:>8.1} us"
        );
        points.push(ConnScalingPoint {
            connections: level,
            os_threads,
            vm_rss_kib,
            audit_p99_us: p99,
        });
    }

    client.shutdown().expect("shutdown daemon");
    drop(subscribers);
    daemon
        .join()
        .expect("serve loop panicked")
        .expect("serve loop failed");
    ConnScaling {
        baseline_mode: baseline,
        idle_threads,
        threaded_baseline_audit_p99_us: THREADED_BASELINE_AUDIT_P99_US,
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<usize>().unwrap_or_else(|e| panic!("{name}: {e}")))
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let conn_baseline = args.iter().any(|a| a == "--conn-baseline");
    let shards = flag_value("--shards").unwrap_or(8);
    let readers = flag_value("--readers").unwrap_or(16);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_concurrency.json".to_string());
    let duration = Duration::from_millis(if smoke { 400 } else { 2500 });
    let resident_per_shard = 256;

    let fresh_store = || {
        let store = ShardedDepDb::new(shards);
        seed(&store, shards, resident_per_shard);
        RwLock::new(store)
    };

    let writer_counts: &[usize] = &[1, 2, 4, 8];
    let mut throughput_points = Vec::new();
    for &writers in writer_counts {
        // A fresh store per cell keeps shard sizes identical across
        // cells and modes — cells never observe each other's garbage.
        let store = fresh_store();
        let global = throughput(
            &store,
            LockMode::GlobalRwLock,
            shards,
            writers,
            readers,
            duration,
            None,
        );
        let store = fresh_store();
        let sharded = throughput(
            &store,
            LockMode::PerShard,
            shards,
            writers,
            readers,
            duration,
            None,
        );
        let speedup = sharded / global;
        eprintln!(
            "bench_concurrency: {writers} writers/{readers} readers | \
             global {global:>9.0} ops/s | sharded {sharded:>9.0} ops/s | speedup {speedup:>5.2}x"
        );
        throughput_points.push(ThroughputPoint {
            writers,
            global_ops_per_sec: global,
            sharded_ops_per_sec: sharded,
            speedup,
        });
    }

    // Reader-latency phase: deliberately *lightly* loaded (2 other-shard
    // writers) so p99 measures the locking discipline, not raw CPU
    // oversubscription on small CI runners. A 1-shard store has no
    // "other shard" to load, so its loaded phase degenerates to idle.
    let latency_writers = 2.min(shards.saturating_sub(1));
    let store = fresh_store();
    let global_idle = reader_p99_us(&store, LockMode::GlobalRwLock, shards, 0, duration, None);
    let store = fresh_store();
    let global_loaded = reader_p99_us(
        &store,
        LockMode::GlobalRwLock,
        shards,
        latency_writers,
        duration,
        None,
    );
    let store = fresh_store();
    let sharded_idle = reader_p99_us(&store, LockMode::PerShard, shards, 0, duration, None);
    let store = fresh_store();
    let sharded_loaded = reader_p99_us(
        &store,
        LockMode::PerShard,
        shards,
        latency_writers,
        duration,
        None,
    );
    eprintln!(
        "bench_concurrency: reader p99 | global {global_idle:.1} -> {global_loaded:.1} us | \
         sharded {sharded_idle:.1} -> {sharded_loaded:.1} us"
    );

    // Instrumentation-overhead phase: the flight recorder's write-path
    // hooks must be invisible. The hooks cost three atomic RMWs per op
    // against an ingest measured in hundreds of microseconds, so any
    // honest signal is well under 1% — the design problem is measuring
    // that on an oversubscribed CI core where thread-scheduling noise
    // alone swings cells by far more. Two noise controls: the overhead
    // cells run writers only (no reader threads — the gate is about
    // ingest cost, and 16 idle-spinning readers on one core drown it),
    // and plain/instrumented are measured as *adjacent pairs* with the
    // best per-round ratio taken, so slow drift across the run (CPU
    // frequency, page cache, a neighbouring job) cancels instead of
    // landing on whichever side ran later.
    let registry = Registry::new();
    let hooks = ObsHooks::new(&registry);
    let overhead_writers = shards.clamp(1, 4);
    let mut plain_best = 0.0f64;
    let mut instrumented_best = 0.0f64;
    let mut overhead_ratio = 0.0f64;
    for _ in 0..3 {
        let store = fresh_store();
        let plain = throughput(
            &store,
            LockMode::PerShard,
            shards,
            overhead_writers,
            0,
            duration,
            None,
        );
        let store = fresh_store();
        let instrumented = throughput(
            &store,
            LockMode::PerShard,
            shards,
            overhead_writers,
            0,
            duration,
            Some(&hooks),
        );
        overhead_ratio = overhead_ratio.max(instrumented / plain);
        plain_best = plain_best.max(plain);
        instrumented_best = instrumented_best.max(instrumented);
    }
    let store = fresh_store();
    let instrumented_reader_p99 = reader_p99_us(
        &store,
        LockMode::PerShard,
        shards,
        latency_writers,
        duration,
        Some(&hooks),
    );
    eprintln!(
        "bench_concurrency: instrumentation | plain {plain_best:>9.0} ops/s | \
         instrumented {instrumented_best:>9.0} ops/s | ratio {overhead_ratio:.3} | \
         reader p99 {instrumented_reader_p99:.1} us"
    );
    assert!(
        hooks.mutations.get() > 0 && hooks.ingest_us.snapshot().count > 0,
        "instrumented cells must actually have recorded metrics"
    );

    // Connection-scaling phase runs last so the scoped-thread phases
    // above never share the process with a thousand open sockets.
    let connection_scaling = connection_scaling(smoke, conn_baseline);

    let report = BenchReport {
        smoke,
        shards,
        readers,
        resident_per_shard,
        duration_ms: duration.as_millis() as u64,
        throughput: throughput_points,
        reader_latency: ReaderLatency {
            global_idle_p99_us: global_idle,
            global_loaded_p99_us: global_loaded,
            sharded_idle_p99_us: sharded_idle,
            sharded_loaded_p99_us: sharded_loaded,
        },
        instrumentation: InstrumentationOverhead {
            plain_ops_per_sec: plain_best,
            instrumented_ops_per_sec: instrumented_best,
            ratio: overhead_ratio,
            instrumented_reader_p99_us: instrumented_reader_p99,
        },
        connection_scaling,
    };

    // Acceptance gates, enforced here so CI fails loudly instead of
    // uploading a silently-regressed artifact. Full mode demands the
    // acceptance margin (disjoint-shard ingest ≥ 4x the single-RwLock
    // baseline at max writers); smoke mode only sanity-checks direction
    // (short cells on small noisy CI runners leave less headroom). The
    // gate is about *disjoint-shard* scaling, so it only applies when
    // every writer can own a shard — an undersharded run (--shards 1
    // with 8 writers) measures same-shard contention by design and is
    // reported, not gated.
    let at_max = report.throughput.last().expect("at least one point");
    if at_max.writers <= shards {
        let required = if smoke { 1.1 } else { 4.0 };
        assert!(
            at_max.speedup >= required,
            "per-shard speedup {:.2}x at {} writers below the {required}x gate",
            at_max.speedup,
            at_max.writers
        );
    } else {
        eprintln!(
            "bench_concurrency: {} writers > {shards} shards — disjoint-shard speedup gate skipped",
            at_max.writers
        );
    }
    // "Unaffected" reader p99: other-shard writers may cost scheduling
    // noise but never a lock wait — allow a small multiple of idle (or
    // an absolute floor for sub-microsecond idle readings), and demand
    // the wait-free path beat the global lock under the same load.
    let lat = &report.reader_latency;
    let allowed = (lat.sharded_idle_p99_us * 10.0).max(200.0);
    assert!(
        lat.sharded_loaded_p99_us <= allowed,
        "sharded reader p99 {:.1}us under other-shard writers exceeds {allowed:.1}us \
         (idle {:.1}us) — readers are no longer wait-free",
        lat.sharded_loaded_p99_us,
        lat.sharded_idle_p99_us
    );
    // At light load the global reader may also get lucky, so this is a
    // no-material-regression bound, not a strict win: the wait-free
    // path must never be left meaningfully behind the lock it replaced.
    assert!(
        lat.sharded_loaded_p99_us <= lat.global_loaded_p99_us * 2.0,
        "wait-free readers ({:.1}us) fell behind the global lock ({:.1}us) under writer load",
        lat.sharded_loaded_p99_us,
        lat.global_loaded_p99_us
    );
    // Instrumentation gates: the flight-recorder write-path hooks must
    // cost ≤ 2% ingest throughput, and readers must stay within the same
    // wait-free band as the uninstrumented run. The best paired ratio
    // keeps the comparison honest on noisy runners; if every round still
    // dips below the bar the hooks got heavier, not the machine slower.
    let inst = &report.instrumentation;
    assert!(
        inst.ratio >= 0.98,
        "instrumented ingest throughput is {:.1}% of plain in the best paired round \
         (bests: {:.0} vs {:.0} ops/s) — instrumentation overhead exceeds the 2% budget",
        inst.ratio * 100.0,
        inst.instrumented_ops_per_sec,
        inst.plain_ops_per_sec
    );
    assert!(
        inst.instrumented_reader_p99_us <= allowed,
        "reader p99 {:.1}us with instrumented writers exceeds {allowed:.1}us — \
         instrumentation broke the wait-free read path",
        inst.instrumented_reader_p99_us
    );

    // Connection-scaling gates: the readiness loop makes subscriber
    // count a memory-bound number, so OS thread count must be flat in
    // connection count and the marginal RSS per idle subscriber must be
    // buffer-sized, not stack-sized. `--conn-baseline` captures the
    // pre-rewrite thread-per-connection numbers these gates are defined
    // against, so it records without asserting.
    let scaling = &report.connection_scaling;
    if !conn_baseline {
        let first = scaling.points.first().expect("at least one level");
        let last = scaling.points.last().expect("at least one level");
        let thread_growth = last.os_threads.saturating_sub(first.os_threads);
        assert!(
            thread_growth <= 8,
            "daemon grew {thread_growth} OS threads from {} to {} idle subscribers — \
             thread count must be O(cores), independent of connections",
            first.connections,
            last.connections
        );
        let per_conn_kib = (last.vm_rss_kib.saturating_sub(first.vm_rss_kib)) as f64
            / (last.connections - first.connections).max(1) as f64;
        assert!(
            per_conn_kib <= 128.0,
            "marginal RSS {per_conn_kib:.1} KiB per idle subscriber exceeds the 128 KiB \
             buffer-sized budget ({} KiB at {} conns -> {} KiB at {} conns)",
            first.vm_rss_kib,
            first.connections,
            last.vm_rss_kib,
            last.connections
        );
        // Latency gate only in full mode and only once the threaded
        // baseline has been calibrated — CI smoke runners are too noisy
        // for a cross-machine absolute-latency bound.
        if !smoke && scaling.threaded_baseline_audit_p99_us > 0.0 {
            let at_64 = scaling
                .points
                .iter()
                .find(|p| p.connections == 64)
                .expect("full mode measures the 64-connection level");
            assert!(
                at_64.audit_p99_us <= scaling.threaded_baseline_audit_p99_us * 2.0,
                "audit p99 {:.1}us at 64 connections exceeds 2x the threaded baseline {:.1}us",
                at_64.audit_p99_us,
                scaling.threaded_baseline_audit_p99_us
            );
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_concurrency.json");
    eprintln!("bench_concurrency: wrote {out}");
}
