//! Regenerates Figure 9: SIA vs PIA computational time for auditing all
//! potential two-way (a) and three-way (b) redundancy deployments among
//! 5–20 cloud providers.
//!
//! Four schemes, as in the paper:
//!
//! * PIA based on KS           (privacy-preserving, homomorphic baseline)
//! * SIA based on minimal RG   (trusted auditor, exact cut sets)
//! * PIA based on P-SOP        (privacy-preserving, commutative encryption)
//! * SIA based on sampling     (trusted auditor, 10⁶ rounds)
//!
//! Every provider holds an n-element component set (paper: 10,000; default
//! here: 1,000 — set `FIG9_N`). Methodology, on a single machine:
//!
//! * protocol runs for different combinations are identical and
//!   independent, so the figure's totals are per-run wall clock ×
//!   C(k, way) (the paper fanned the same runs across 40 workstations);
//! * P-SOP, KS (linear in n) and minimal-RG (~n^way cut-set products) are
//!   measured at a feasible calibration size and scaled by their growth
//!   laws — each printed row says what was measured and what was scaled.
//!   The minimal-RG blow-up is the paper's own point (§4.1.2: NP-hard).
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_fig9`

use indaas_bench::{synthetic_datasets, timed};
use indaas_graph::detail::{component_sets_to_graph, ComponentSet};
use indaas_pia::{run_ks, run_psop, KsConfig, PsopConfig};
use indaas_sia::{failure_sampling, minimal_risk_groups, MinimalConfig, SamplingConfig};
use indaas_simnet::SimNetwork;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn choose(n: usize, k: usize) -> u64 {
    let mut num = 1u64;
    let mut den = 1u64;
    for i in 0..k {
        num *= (n - i) as u64;
        den *= (i + 1) as u64;
    }
    num / den
}

fn graph_of(datasets: &[Vec<String>]) -> indaas_graph::FaultGraph {
    let sets: Vec<ComponentSet> = datasets
        .iter()
        .enumerate()
        .map(|(i, d)| ComponentSet::new(format!("P{i}"), d.clone()))
        .collect();
    component_sets_to_graph(&sets).expect("two-level graph builds")
}

fn main() {
    let n = env_or("FIG9_N", 1_000);
    let sampling_rounds = env_or("FIG9_SAMPLING_ROUNDS", 1_000_000) as u64;
    let providers = [5usize, 10, 15, 20];
    // Calibration sizes keeping single-machine runs tractable.
    let ks_cal = n.min(env_or("FIG9_KS_CAL", 300));
    let psop_cal = n.min(env_or("FIG9_PSOP_CAL", 500));

    for way in [2usize, 3] {
        println!(
            "=== Figure 9({}) — {way}-way redundancy, n = {n} elements/provider ===",
            if way == 2 { "a" } else { "b" }
        );
        let minimal_cal = if way == 2 { n.min(300) } else { n.min(60) };

        // PIA/KS: linear in n, measured at ks_cal.
        let (_, ks_t) = timed(|| {
            let mut net = SimNetwork::new(way + 1);
            run_ks(
                &synthetic_datasets(way, ks_cal, 0.3),
                &KsConfig {
                    key_bits: 1024,
                    bucket_size: 16,
                    seed: 9,
                },
                &mut net,
            )
        });
        let ks_run = ks_t * n as f64 / ks_cal as f64;

        // SIA/minimal-RG: ~ (0.7·n)^way cut-set products.
        let (_, min_t) = timed(|| {
            minimal_risk_groups(
                &graph_of(&synthetic_datasets(way, minimal_cal, 0.3)),
                &MinimalConfig::default(),
            )
        });
        let minimal_run = min_t * (n as f64 / minimal_cal as f64).powi(way as i32);

        // PIA/P-SOP: linear in n, measured at psop_cal.
        let (_, psop_t) = timed(|| {
            let mut net = SimNetwork::new(way + 1);
            run_psop(
                &synthetic_datasets(way, psop_cal, 0.3),
                &PsopConfig::default(),
                &mut net,
            )
        });
        let psop_run = psop_t * n as f64 / psop_cal as f64;

        // SIA/sampling: measured directly at full n (rounds dominate).
        let (_, sampling_run) = timed(|| {
            failure_sampling(
                &graph_of(&synthetic_datasets(way, n, 0.3)),
                &SamplingConfig {
                    rounds: sampling_rounds,
                    fail_prob: 0.5,
                    seed: 9,
                    threads: 1,
                    minimize: true,
                    weighted: false,
                },
            )
        });

        println!(
            "per-run seconds at n={n}: KS={ks_run:.1} (measured n={ks_cal})  \
             minimal-RG={minimal_run:.1} (measured n={minimal_cal}, ~n^{way} scaling)  \
             P-SOP={psop_run:.1} (measured n={psop_cal})  \
             sampling(10^{})={sampling_run:.1} (measured directly)",
            (sampling_rounds as f64).log10() as u32
        );
        println!(
            "{:>10} {:>10} {:>14} {:>16} {:>14} {:>18}",
            "providers",
            "combos",
            "PIA/KS (s)",
            "SIA/minimal (s)",
            "PIA/P-SOP (s)",
            "SIA/sampling (s)"
        );
        for &k in &providers {
            let combos = choose(k, way);
            println!(
                "{:>10} {:>10} {:>14.1} {:>16.1} {:>14.1} {:>18.1}",
                k,
                combos,
                ks_run * combos as f64,
                minimal_run * combos as f64,
                psop_run * combos as f64,
                sampling_run * combos as f64
            );
        }
        println!();
    }
    println!(
        "shape (as in the paper): PIA/KS is the most expensive by orders of\n\
         magnitude; exact minimal-RG enumeration blows up polynomially in the\n\
         component-set size; P-SOP's privacy premium over the trusted-auditor\n\
         sampling scheme stays within a small factor."
    );
}
