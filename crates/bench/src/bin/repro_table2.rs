//! Regenerates Table 2: ranking lists of two- and three-way redundancy
//! deployments across four clouds (Riak, MongoDB, Redis, CouchDB), by
//! Jaccard similarity computed privately via P-SOP.
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_table2`

use indaas_pia::normalize::normalize_set;
use indaas_pia::report::render_ranking;
use indaas_pia::{rank_deployments, PsopConfig};
use indaas_topology::clouds::cloud_stacks;

/// Paper's Table 2 values, for side-by-side comparison.
const PAPER_2WAY: [(&str, f64); 6] = [
    ("Cloud2 & Cloud4", 0.1419),
    ("Cloud2 & Cloud3", 0.1547),
    ("Cloud1 & Cloud4", 0.2081),
    ("Cloud1 & Cloud3", 0.2939),
    ("Cloud3 & Cloud4", 0.3489),
    ("Cloud1 & Cloud2", 0.5059),
];
const PAPER_3WAY: [(&str, f64); 4] = [
    ("Cloud2 & Cloud3 & Cloud4", 0.1128),
    ("Cloud1 & Cloud2 & Cloud4", 0.1207),
    ("Cloud1 & Cloud3 & Cloud4", 0.1353),
    ("Cloud1 & Cloud2 & Cloud3", 0.1536),
];

fn main() {
    let providers: Vec<(String, Vec<String>)> = cloud_stacks()
        .into_iter()
        .map(|s| {
            (
                s.name.clone(),
                normalize_set(s.packages.iter().map(String::as_str)),
            )
        })
        .collect();
    let config = PsopConfig::default();

    println!("=== measured (this reproduction) ===\n");
    let two = rank_deployments(&providers, 2, None, &config);
    println!("{}", render_ranking(2, &two));
    let three = rank_deployments(&providers, 3, None, &config);
    println!("{}", render_ranking(3, &three));

    println!("=== paper (Table 2) ===\n");
    for (i, (name, j)) in PAPER_2WAY.iter().enumerate() {
        println!("{:<5} {:<42} {:.4}", i + 1, name, j);
    }
    println!();
    for (i, (name, j)) in PAPER_3WAY.iter().enumerate() {
        println!("{:<5} {:<42} {:.4}", i + 1, name, j);
    }

    // Shape assertions: the best 2-way and 3-way deployments agree with the
    // paper (absolute Jaccard values depend on the synthesized package
    // closures; the orderings are the reproduction target).
    assert_eq!(two[0].providers, vec!["Cloud2", "Cloud4"]);
    assert_eq!(
        three[0].providers,
        vec!["Cloud2", "Cloud3", "Cloud4"],
        "best 3-way deployment must exclude Riak's Erlang stack"
    );
    assert!(
        two.last()
            .unwrap()
            .providers
            .contains(&"Cloud1".to_string()),
        "Riak must appear in the least independent pair"
    );
    println!("\nshape matches: best 2-way and best 3-way deployments agree with the paper");
}
