//! Regenerates Table 3: configurations of the generated fat-tree
//! topologies A, B and C.
//!
//! Run with: `cargo run --release -p indaas-bench --bin repro_table3`

use indaas_topology::{FatTree, FatTreeConfig};

fn main() {
    println!("Table 3: Configurations of the generated topologies.");
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "", "Topology A", "Topology B", "Topology C"
    );
    let trees: Vec<FatTree> = [
        FatTreeConfig::topology_a(),
        FatTreeConfig::topology_b(),
        FatTreeConfig::topology_c(),
    ]
    .into_iter()
    .map(FatTree::new)
    .collect();

    let row = |label: &str, f: &dyn Fn(&FatTree) -> usize| {
        println!(
            "{:<22}{:>12}{:>12}{:>12}",
            label,
            f(&trees[0]),
            f(&trees[1]),
            f(&trees[2])
        );
    };
    row("# switch ports", &|t| t.config().ports);
    row("# core routers", &|t| t.num_cores());
    row("# agg switches", &|t| t.num_aggs());
    row("# ToR switches", &|t| t.num_tors());
    row("# servers", &|t| t.num_servers());
    row("Total # devices", &|t| t.total_devices());

    // Paper values, asserted exactly — this table must match bit-for-bit.
    assert_eq!(trees[0].total_devices(), 1_344);
    assert_eq!(trees[1].total_devices(), 4_176);
    assert_eq!(trees[2].total_devices(), 30_528);
    assert_eq!(trees[2].num_servers(), 27_648);
    println!("\nall counts match Table 3 of the paper exactly");
}
