//! The "thousand idle watchers" regression gate for the readiness-loop
//! core: hundreds of live audit subscriptions must cost the daemon
//! **zero** extra OS threads, and one ingest wave must still reach every
//! watcher promptly.
//!
//! Under the old thread-per-connection server each watcher held a
//! handler thread plus a writer thread alive for the life of its
//! subscription (512 watchers ≈ 1000+ daemon threads). The epoll loop
//! parks them all in one thread; this harness boots a real daemon
//! process, opens `--subs` subscriptions from one client process, then:
//!
//! 1. reads `Threads:` from `/proc/<daemon-pid>/status` and fails if it
//!    exceeds `--max-threads` (default 16: serve loop + worker pool);
//! 2. ingests one batch that touches the subscribed shards and fails
//!    unless every subscription sees the pushed epoch within
//!    `--deadline-ms`.
//!
//! By default it spawns `indaas serve` itself (found next to this
//! binary in the cargo target dir); pass `--addr` and `--daemon-pid` to
//! point it at an externally managed daemon instead.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use indaas_core::{AuditSpec, CandidateDeployment};
use indaas_service::Client;

const RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S1" dst="Internet" route="tor1,core2"/>
    <src="S2" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core1"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
    <hw="S1" type="Disk" dep="S1-disk"/>
    <hw="S2" type="Disk" dep="S2-disk"/>
    <hw="S3" type="Disk" dep="S3-disk"/>
"#;

/// The wave: new hardware under S1 bumps the shards every subscription
/// pins, so each watcher is owed exactly one fresh pushed epoch.
const WAVE: &str = r#"<hw="S1" type="Nic" dep="S1-nic"/>"#;

fn watch_spec() -> AuditSpec {
    AuditSpec::sia_size_based(vec![
        CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
        CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
    ])
}

struct Args {
    addr: Option<String>,
    daemon_pid: Option<u32>,
    subs: usize,
    conns: usize,
    deadline: Duration,
    max_threads: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        daemon_pid: None,
        subs: 512,
        conns: 16,
        deadline: Duration::from_millis(10_000),
        max_threads: 16,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!(
                "usage: idle_watchers [--addr HOST:PORT] [--daemon-pid PID] \
                 [--subs N] [--conns N] [--deadline-ms MS] [--max-threads N]"
            );
            std::process::exit(0);
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--addr" => args.addr = Some(value.clone()),
            "--daemon-pid" => {
                args.daemon_pid = Some(value.parse().map_err(|e| format!("--daemon-pid: {e}"))?)
            }
            "--subs" => args.subs = value.parse().map_err(|e| format!("--subs: {e}"))?,
            "--conns" => args.conns = value.parse().map_err(|e| format!("--conns: {e}"))?,
            "--deadline-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
                args.deadline = Duration::from_millis(ms);
            }
            "--max-threads" => {
                args.max_threads = value.parse().map_err(|e| format!("--max-threads: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.conns == 0 || args.subs == 0 {
        return Err("--subs and --conns must be at least 1".into());
    }
    args.conns = args.conns.min(args.subs);
    Ok(args)
}

/// OS thread count of `pid`, from `/proc/<pid>/status`.
fn thread_count(pid: u32) -> Result<u64, String> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status"))
        .map_err(|e| format!("reading /proc/{pid}/status: {e}"))?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| format!("no Threads: line in /proc/{pid}/status"))
}

/// Spawns `indaas serve` (the binary next to ours in the target dir) on
/// an ephemeral-ish port and waits until it accepts connections. The
/// audit queue is sized to the watcher fleet: one ingest wave enqueues
/// one push audit per subscription, and overflowed pushes are dropped
/// (logged, not retried), which would fail the wave gate spuriously.
fn spawn_daemon(subs: usize) -> Result<(Child, String), String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let indaas = me
        .parent()
        .map(|d| d.join("indaas"))
        .filter(|p| p.exists())
        .ok_or("no `indaas` binary beside idle_watchers; build the workspace first")?;
    // Pick a free port by binding and releasing it; the daemon rebinds
    // it a moment later (a benign race on a CI box).
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map_err(|e| format!("probing for a free port: {e}"))?
        .port();
    let addr = format!("127.0.0.1:{port}");
    let queue = (subs * 2).max(256).to_string();
    let child = Command::new(indaas)
        .args([
            "serve",
            "--listen",
            &addr,
            "--slow-audit-ms",
            "0",
            "--queue",
            &queue,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning indaas serve: {e}"))?;
    let boot = Instant::now();
    while std::net::TcpStream::connect(&addr).is_err() {
        if boot.elapsed() > Duration::from_secs(10) {
            return Err(format!("daemon never came up on {addr}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Ok((child, addr))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let (mut child, addr, pid): (Option<Child>, String, Option<u32>) = match &args.addr {
        Some(addr) => (None, addr.clone(), args.daemon_pid),
        None => {
            let (child, addr) = spawn_daemon(args.subs)?;
            let pid = child.id();
            (Some(child), addr, Some(pid))
        }
    };

    let result = drive(&args, &addr, pid);
    if let Some(child) = child.as_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive(args: &Args, addr: &str, pid: Option<u32>) -> Result<(), String> {
    let spec = watch_spec();

    // Seed the topology the watchers audit.
    let mut admin = Client::connect(addr).map_err(|e| format!("connect admin: {e}"))?;
    admin.ingest(RECORDS).map_err(|e| format!("ingest: {e}"))?;

    // Open the watcher fleet: `--subs` subscriptions multiplexed over
    // `--conns` v2 sessions from this one process, initial events
    // drained so every watcher is *idle* when we measure.
    let mut clients = Vec::with_capacity(args.conns);
    for _ in 0..args.conns {
        clients.push(Client::connect(addr).map_err(|e| format!("connect watcher: {e}"))?);
    }
    let mut watchers = Vec::with_capacity(args.subs);
    for i in 0..args.subs {
        let sub = clients[i % args.conns]
            .subscribe(&spec)
            .map_err(|e| format!("subscribe #{i}: {e}"))?;
        watchers.push(sub);
    }
    for (i, sub) in watchers.iter_mut().enumerate() {
        sub.recv()
            .map_err(|e| format!("initial event for watcher #{i}: {e}"))?;
    }

    // Gate 1: all those idle watchers bought the daemon zero threads.
    if let Some(pid) = pid {
        let threads = thread_count(pid)?;
        println!(
            "idle_watchers: {} subscriptions over {} conns -> daemon at {} OS threads (cap {})",
            args.subs, args.conns, threads, args.max_threads
        );
        if threads > args.max_threads {
            return Err(format!(
                "daemon holds {threads} OS threads with {} idle subscriptions \
                 (cap {}): the readiness loop is leaking threads",
                args.subs, args.max_threads
            ));
        }
    } else {
        println!(
            "idle_watchers: {} subscriptions over {} conns (no --daemon-pid; thread gate skipped)",
            args.subs, args.conns
        );
    }

    // Gate 2: one ingest wave reaches every watcher within the deadline.
    let wave_start = Instant::now();
    let ack = admin
        .ingest(WAVE)
        .map_err(|e| format!("wave ingest: {e}"))?;
    for (i, sub) in watchers.iter_mut().enumerate() {
        let remaining = args
            .deadline
            .checked_sub(wave_start.elapsed())
            .ok_or_else(|| deadline_miss(i, args))?;
        let event = sub
            .recv_timeout(remaining)
            .map_err(|e| format!("wave event for watcher #{i}: {e}"))?
            .ok_or_else(|| deadline_miss(i, args))?;
        if event.epoch < ack.epoch {
            return Err(format!(
                "watcher #{i} saw stale epoch {} after wave epoch {}",
                event.epoch, ack.epoch
            ));
        }
    }
    println!(
        "idle_watchers: wave epoch {} reached all {} watchers in {:?} (deadline {:?})",
        ack.epoch,
        args.subs,
        wave_start.elapsed(),
        args.deadline
    );
    Ok(())
}

fn deadline_miss(watcher: usize, args: &Args) -> String {
    format!(
        "wave missed watcher #{watcher} of {}: deadline {:?} elapsed",
        args.subs, args.deadline
    )
}

fn main() {
    if let Err(e) = run() {
        eprintln!("idle_watchers: FAIL: {e}");
        std::process::exit(1);
    }
}
