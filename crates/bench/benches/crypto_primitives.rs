//! Supporting micro-benchmarks: the cryptographic primitives whose costs
//! drive Figures 8 and 9 (the paper: "the cryptographic operations tend to
//! be the major computational bottleneck").

use criterion::{criterion_group, criterion_main, Criterion};
use indaas_bigint::BigUint;
use indaas_crypto::{sha256, CommutativeCipher, PaillierKeypair};
use rand::SeedableRng;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("crypto/sha256_1kb", |b| b.iter(|| sha256(&data)));
}

fn bench_commutative(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cipher = CommutativeCipher::generate(&mut rng);
    let m = cipher.hash_to_group(b"core-router-17");
    c.bench_function("crypto/commutative_encrypt_1024", |b| {
        b.iter(|| cipher.encrypt(&m))
    });
}

fn bench_paillier(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let kp = PaillierKeypair::generate(1024, &mut rng);
    let m = BigUint::from_u64(0xdead_beef);
    let mut group = c.benchmark_group("crypto/paillier_1024");
    group.sample_size(10);
    group.bench_function("encrypt", |b| b.iter(|| kp.public().encrypt(&m, &mut rng)));
    let ct = kp.public().encrypt(&m, &mut rng);
    group.bench_function("decrypt", |b| b.iter(|| kp.decrypt(&ct)));
    group.bench_function("mul_const_64bit", |b| {
        b.iter(|| kp.public().mul_const(&ct, &BigUint::from_u64(123_456_789)))
    });
    group.finish();
}

fn bench_modpow(c: &mut Criterion) {
    let p = BigUint::from_hex(indaas_crypto::MODP_1024_HEX).unwrap();
    let base = BigUint::from_u64(0x1234_5678_9abc_def1);
    let exp = &p - &BigUint::from_u64(12345);
    c.bench_function("bigint/modpow_1024", |b| b.iter(|| base.modpow(&exp, &p)));
}

criterion_group!(
    benches,
    bench_sha256,
    bench_commutative,
    bench_paillier,
    bench_modpow
);
criterion_main!(benches);
