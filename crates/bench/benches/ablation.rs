//! Ablation benchmarks for the design choices this reproduction makes on
//! top of the paper's algorithms:
//!
//! * the three risk-group engines head to head (MOCUS cut sets vs BDD
//!   compilation vs failure sampling) on the same deployment graph,
//! * lazy short-circuit sampling evaluation vs the paper's dense
//!   bottom-up evaluation (the `minimize` flag switches the worker),
//! * weighted (importance) sampling vs uniform coin flips.

use criterion::{criterion_group, criterion_main, Criterion};
use indaas_bench::fig7_workload;
use indaas_deps::FailureProbModel;
use indaas_sia::{
    build_fault_graph, failure_sampling, minimal_risk_groups, Bdd, BuildSpec, MinimalConfig,
    SamplingConfig,
};
use indaas_topology::FatTreeConfig;

fn graph(replicas: usize, with_probs: bool) -> indaas_graph::FaultGraph {
    let (db, cand) = fig7_workload(FatTreeConfig::topology_a(), replicas, None);
    build_fault_graph(
        &db,
        &BuildSpec {
            name: cand.name,
            servers: cand.servers,
            needed_alive: replicas - 1,
            network: true,
            hardware: true,
            software: true,
            prob_model: with_probs.then(FailureProbModel::gill_defaults),
        },
    )
    .expect("fault graph builds")
}

fn bench_engines(c: &mut Criterion) {
    let g = graph(8, false);
    let mut group = c.benchmark_group("ablation/rg_engines");
    group.sample_size(10);
    group.bench_function("mocus_order4", |b| {
        b.iter(|| minimal_risk_groups(&g, &MinimalConfig::with_max_order(4)))
    });
    group.bench_function("bdd_compile_and_mcs", |b| {
        b.iter(|| Bdd::compile(&g, 1 << 22).minimal_cut_sets())
    });
    group.bench_function("sampling_2k_rounds", |b| {
        b.iter(|| {
            failure_sampling(
                &g,
                &SamplingConfig {
                    rounds: 2_000,
                    ..SamplingConfig::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_lazy_vs_dense(c: &mut Criterion) {
    let g = graph(16, false);
    let mut group = c.benchmark_group("ablation/sampling_evaluator");
    group.sample_size(10);
    // minimize=true routes through the lazy short-circuit evaluator;
    // minimize=false is the paper's dense per-round evaluation.
    group.bench_function("lazy_1k_rounds", |b| {
        b.iter(|| {
            failure_sampling(
                &g,
                &SamplingConfig {
                    rounds: 1_000,
                    minimize: true,
                    ..SamplingConfig::default()
                },
            )
        })
    });
    group.bench_function("dense_1k_rounds", |b| {
        b.iter(|| {
            failure_sampling(
                &g,
                &SamplingConfig {
                    rounds: 1_000,
                    minimize: false,
                    ..SamplingConfig::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_weighted_sampling(c: &mut Criterion) {
    let g = graph(8, true);
    let mut group = c.benchmark_group("ablation/weighted_sampling");
    group.sample_size(10);
    for (label, weighted) in [("uniform", false), ("weighted", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                failure_sampling(
                    &g,
                    &SamplingConfig {
                        rounds: 2_000,
                        weighted,
                        fail_prob: 0.5,
                        ..SamplingConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_lazy_vs_dense,
    bench_weighted_sampling
);
criterion_main!(benches);
