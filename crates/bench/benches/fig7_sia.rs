//! Criterion micro-benchmarks behind Figure 7: the minimal-RG algorithm
//! and failure sampling on fat-tree deployment fault graphs (topology A
//! scale; the full sweep lives in the `repro_fig7` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indaas_bench::fig7_workload;
use indaas_sia::{
    build_fault_graph, failure_sampling, minimal_risk_groups, BuildSpec, MinimalConfig,
    SamplingConfig,
};
use indaas_topology::FatTreeConfig;

fn topology_a_graph(replicas: usize) -> indaas_graph::FaultGraph {
    let (db, cand) = fig7_workload(FatTreeConfig::topology_a(), replicas, None);
    build_fault_graph(
        &db,
        &BuildSpec {
            name: cand.name,
            servers: cand.servers,
            needed_alive: replicas - 1,
            network: true,
            hardware: true,
            software: true,
            prob_model: None,
        },
    )
    .expect("fault graph builds")
}

fn bench_minimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/minimal_rg");
    group.sample_size(10);
    for replicas in [4usize, 8, 16] {
        let graph = topology_a_graph(replicas);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{replicas}_replicas")),
            &graph,
            |b, g| b.iter(|| minimal_risk_groups(g, &MinimalConfig::with_max_order(4))),
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/failure_sampling_1k_rounds");
    group.sample_size(10);
    let graph = topology_a_graph(16);
    for rounds in [1_000u64, 4_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    failure_sampling(
                        &graph,
                        &SamplingConfig {
                            rounds,
                            fail_prob: 0.5,
                            seed: 7,
                            threads: 1,
                            minimize: true,
                            weighted: false,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minimal, bench_sampling);
criterion_main!(benches);
