//! Criterion micro-benchmarks behind Figure 8: P-SOP vs the KS baseline
//! (full sweeps live in the `repro_fig8` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indaas_bench::synthetic_datasets;
use indaas_pia::{run_ks, run_psop, KsConfig, PsopConfig, PsopParty};
use indaas_simnet::SimNetwork;

fn bench_psop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/psop");
    group.sample_size(10);
    for (k, n) in [(2usize, 100usize), (4, 100), (2, 400)] {
        let datasets = synthetic_datasets(k, n, 0.3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &datasets,
            |b, d| {
                b.iter(|| {
                    let mut net = SimNetwork::new(d.len() + 1);
                    run_psop(d, &PsopConfig::default(), &mut net)
                })
            },
        );
    }
    group.finish();
}

fn bench_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/ks");
    group.sample_size(10);
    // 256-bit keys keep the micro-benchmark fast; the 1024-bit sweep is in
    // `repro_fig8`. The P-SOP/KS gap is visible at any key size.
    for (k, n) in [(2usize, 64usize), (4, 64)] {
        let datasets = synthetic_datasets(k, n, 0.3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &datasets,
            |b, d| {
                b.iter(|| {
                    let mut net = SimNetwork::new(d.len() + 1);
                    run_ks(
                        d,
                        &KsConfig {
                            key_bits: 256,
                            bucket_size: 16,
                            seed: 8,
                        },
                        &mut net,
                    )
                })
            },
        );
    }
    group.finish();
}

/// The federated hot path: one daemon's cryptographic work per session —
/// encrypt-and-permute its own list, then one re-encryption relay. What a
/// provider pays per ring round, independent of the wire.
fn bench_psop_party_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/psop_party");
    group.sample_size(10);
    for n in [100usize, 400] {
        let datasets = synthetic_datasets(2, n, 0.3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &datasets,
            |b, d| {
                b.iter(|| {
                    let mut party = PsopParty::new(0, 2, &PsopConfig::default());
                    let own = party.initial_payload(&d[0], true);
                    party.relay(&own)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_psop, bench_ks, bench_psop_party_steps);
criterion_main!(benches);
