//! A minimal readiness-polling shim over Linux `epoll`, in the spirit
//! of the repo's other zero-dependency vendored crates: no `libc`
//! crate, no `mio` — just thin `extern "C"` declarations against the
//! symbols the C runtime already links (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, `close`, `read`, `write`).
//!
//! The daemon's readiness loop drives every client connection through
//! one [`Poller`]; worker threads that finish an audit wake the loop
//! through a [`Waker`] (an `eventfd` registered like any other fd), and
//! deadlines/debounce windows come due through the [`TimerWheel`] whose
//! next deadline bounds the `epoll_wait` timeout.
//!
//! Level-triggered only. The loop re-reads until `WouldBlock`, so
//! level semantics cost a spurious wakeup at worst, never a lost event.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

mod timer;
pub use timer::{TimerId, TimerWheel};

#[allow(non_camel_case_types)]
type c_int = i32;

// The C runtime is already linked by std on Linux; these are the only
// symbols the shim borrows from it.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel ABI struct. x86 packs it so the 64-bit data field sits
/// directly after the 32-bit mask; other architectures keep natural
/// alignment — mirroring glibc's declaration exactly.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts more bytes.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only (read side paused for backpressure).
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions — a connection with queued output.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification: the registered token plus what changed.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or a hangup) are waiting to be read.
    pub readable: bool,
    /// The socket accepts more bytes.
    pub writable: bool,
    /// Error or hangup: the connection should be torn down after a
    /// final read drains whatever the peer managed to send.
    pub closed: bool,
}

/// An epoll instance. All registration and waiting happens on the loop
/// thread; other threads interact only through a [`Waker`].
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall wrapper, no pointers involved.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. an already-registered fd).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Re-arms an existing registration with a new interest set.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Safe to call for fds about to close.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (other than for unknown fds,
    /// which callers treat as already-deregistered).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // Pre-2.6.9 kernels demanded a non-null event even for DEL;
        // passing one costs nothing and never hurts.
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` waits forever), filling `events`. Returns the
    /// number of events delivered; 0 means the timeout fired.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure. `EINTR` is retried internally —
    /// a signal never surfaces as a spurious error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        const CAP: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 100µs deadline does not spin at timeout 0.
            Some(d) => {
                let ms = d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        };
        let n = loop {
            // SAFETY: `raw` is a valid buffer of CAP events for the call.
            let ret = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for e in &raw[..n] {
            let mask = e.events;
            events.push(Event {
                token: e.data,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

/// Wakes a [`Poller`] from any thread: an `eventfd` registered under a
/// caller-chosen token. Cheap (one 8-byte write), coalescing (N wakes
/// before the loop drains count as one), and safe to call after the
/// loop exited (the write fails silently into a closed pipe at worst).
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under `token`
    /// (readable interest; the loop calls [`Waker::drain`] when the
    /// token fires).
    ///
    /// # Errors
    ///
    /// Propagates `eventfd`/`epoll_ctl` failure.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: plain syscall wrapper.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        if let Err(e) = poller.add(fd, token, Interest::READABLE) {
            // SAFETY: fd was just created and is not shared.
            unsafe { close(fd) };
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Wakes the poller. Never blocks: at worst the counter saturates,
    /// which still leaves the fd readable.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakeups so the (level-triggered) fd goes quiet
    /// until the next [`Waker::wake`].
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer. An
        // eventfd read resets the counter, so one read suffices.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// SAFETY: the wrapped fd is just an integer; eventfd writes are
// thread-safe by contract.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn waker_wakes_an_idle_poll() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller, 7).unwrap());
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(started.elapsed() < Duration::from_secs(5));
        waker.drain();
        // Drained: a short wait now times out quietly.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        t.join().unwrap();
    }

    #[test]
    fn socket_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        // Nothing sent yet: timeout.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
        client.write_all(b"ping").unwrap();
        assert_eq!(poller.wait(&mut events, None).unwrap(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable && !events[0].closed);

        // Re-arm for writes too: a fresh socket is instantly writable.
        poller
            .modify(server.as_raw_fd(), 42, Interest::BOTH)
            .unwrap();
        assert!(poller.wait(&mut events, None).unwrap() >= 1);
        assert!(events.iter().any(|e| e.writable));

        // Peer hangup surfaces as closed+readable.
        drop(client);
        poller
            .modify(server.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.closed));
        let mut sink = [0u8; 16];
        let mut s = &server;
        assert_eq!(s.read(&mut sink).unwrap(), 4);

        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn deleted_fd_stops_reporting() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        poller.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap(),
            0
        );
    }
}
