//! The readiness loop's timer wheel: deadlines armed from the loop
//! thread, popped when due, cancellable in O(log n) amortized.
//!
//! Implemented as a lazy-deletion binary heap (a classic timer-wheel
//! stand-in at daemon scale): `arm` pushes `(deadline, id)`, `cancel`
//! drops the payload, and expired-but-cancelled heap entries are
//! skipped when popped. The loop asks [`TimerWheel::next_deadline`] to
//! bound its `epoll_wait` timeout, so a due timer wakes the loop
//! exactly on time and an idle loop sleeps forever.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// Handle for cancelling an armed timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Deadline-ordered timers carrying a payload of type `T`.
pub struct TimerWheel<T> {
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
    live: HashMap<u64, T>,
    next_id: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_id: 1,
        }
    }

    /// Arms a timer to come due at `at`.
    pub fn arm(&mut self, at: Instant, payload: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Reverse((at, id)));
        self.live.insert(id, payload);
        TimerId(id)
    }

    /// Cancels an armed timer, returning its payload if it had not yet
    /// fired. The heap entry stays behind and is skipped lazily.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        self.live.remove(&id.0)
    }

    /// The earliest live deadline — what bounds the poll timeout.
    /// Cancelled stragglers at the top of the heap are discarded here
    /// so they can never cause a needless early wakeup.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(&Reverse((at, id))) = self.heap.peek() {
            if self.live.contains_key(&id) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops one timer due at or before `now`, or `None` when nothing is
    /// due. Call in a loop to drain a burst.
    pub fn pop_expired(&mut self, now: Instant) -> Option<(TimerId, T)> {
        while let Some(&Reverse((at, id))) = self.heap.peek() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if let Some(payload) = self.live.remove(&id) {
                return Some((TimerId(id), payload));
            }
        }
        None
    }

    /// Live (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        let t0 = Instant::now();
        w.arm(t0 + Duration::from_millis(30), "late");
        w.arm(t0 + Duration::from_millis(10), "early");
        w.arm(t0 + Duration::from_millis(20), "mid");
        assert_eq!(w.next_deadline(), Some(t0 + Duration::from_millis(10)));
        let far = t0 + Duration::from_secs(1);
        assert_eq!(w.pop_expired(far).unwrap().1, "early");
        assert_eq!(w.pop_expired(far).unwrap().1, "mid");
        assert_eq!(w.pop_expired(far).unwrap().1, "late");
        assert!(w.pop_expired(far).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn nothing_due_before_deadline() {
        let mut w = TimerWheel::new();
        let t0 = Instant::now();
        w.arm(t0 + Duration::from_secs(60), ());
        assert!(w.pop_expired(t0).is_none());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn cancelled_timers_never_fire_and_never_bound_the_wait() {
        let mut w = TimerWheel::new();
        let t0 = Instant::now();
        let soon = w.arm(t0 + Duration::from_millis(1), "soon");
        w.arm(t0 + Duration::from_secs(60), "far");
        assert_eq!(w.cancel(soon), Some("soon"));
        assert_eq!(w.cancel(soon), None, "double cancel is a no-op");
        // The cancelled head must not masquerade as the next deadline.
        assert_eq!(w.next_deadline(), Some(t0 + Duration::from_secs(60)));
        assert!(w.pop_expired(t0 + Duration::from_secs(1)).is_none());
        assert_eq!(w.len(), 1);
    }
}
