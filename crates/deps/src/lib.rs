//! Dependency acquisition for INDaaS (§3 of the paper).
//!
//! Data sources collect *structural dependency data* — network routes,
//! hardware inventories and software package closures — through pluggable
//! dependency acquisition modules (DAMs), normalize it into the common
//! wire format of Table 1, and store it in a [`DepDb`] for the auditing
//! agent to query.
//!
//! The paper's prototype shells out to NSDMiner, `lshw` and
//! `apt-rdepends`; this reproduction ships *simulated* collectors
//! ([`dam::SimCollector`]) that draw from synthetic ground truth (generated
//! by `indaas-topology`) with a configurable detection miss rate, matching
//! the ~90% dependency coverage the paper reports.
//!
//! # Examples
//!
//! ```
//! use indaas_deps::{parse_records, DepDb};
//!
//! let text = r#"
//!   <src="S1" dst="Internet" route="ToR1,Core1"/>
//!   <hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
//!   <pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
//! "#;
//! let records = parse_records(text).unwrap();
//! let db = DepDb::from_records(records);
//! assert_eq!(db.network_deps("S1").len(), 1);
//! assert_eq!(db.software_deps("S1")[0].pgm, "Riak1");
//! ```

pub mod adapters;
pub mod dam;
pub mod depdb;
pub mod failprob;
pub mod format;
pub mod persist;
pub mod record;
pub mod sharded;
pub mod swap;
pub mod versioned;

pub use dam::{collect_all, DamError, DependencyAcquisitionModule, SimCollector};
pub use depdb::{DepDb, DepRecordRef, DepView};
pub use failprob::FailureProbModel;
pub use format::{parse_record, parse_records, FormatError};
pub use persist::{write_atomic, Manifest, MANIFEST_FILE, SEGMENT_FORMAT_VERSION};
pub use record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};
pub use sharded::{
    shard_index, DbSnapshot, EpochVector, ShardCounters, ShardedDepDb, ShardedIngestReport,
};
pub use swap::ArcSwapCell;
pub use versioned::{Epoch, IngestReport, VersionedDepDb};
