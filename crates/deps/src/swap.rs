//! A wait-free readable, atomically swappable `Arc<T>` slot.
//!
//! The sharded store publishes each shard's current snapshot through one
//! of these cells so that `snapshot()` never takes a lock: readers pay
//! two atomic RMWs and one atomic load per shard, writers swap a raw
//! pointer and briefly drain in-flight readers before releasing their
//! reference to the previous value. Writers are expected to serialize
//! among themselves externally (each shard's write mutex does so); any
//! number of readers may load concurrently with a swap.
//!
//! The reclamation protocol is a read-indicator RCU:
//!
//! * a reader **announces itself first** (`readers += 1`), then loads the
//!   pointer, takes its reference count, and retires (`readers -= 1`);
//! * a swapper **publishes the new pointer first**, then waits for
//!   `readers == 0` before dropping the cell's reference to the old one.
//!
//! With sequentially consistent ordering on the announce, the pointer
//! accesses and the drain load, every reader either announced before the
//! swap (so the swapper's drain waits for it to finish taking its
//! count) or loads the new pointer — the old value is never freed while
//! a reader can still touch it. `load` is wait-free; `store` is
//! *blocking*: the single counter cannot tell pre-swap readers from
//! post-swap ones, so the drain waits for a moment when **no** reader
//! is inside its announce→retire window. Each window is a handful of
//! instructions around a snapshot op that is orders of magnitude
//! longer, so per-cell occupancy stays far below 1 and the expected
//! drain is a few samples — but a workload that saturates one cell
//! with back-to-back loads from many threads would starve its writer.
//! That trade-off (simplicity and proven-safe reclamation over
//! generation tracking) fits a store with one cell per shard and
//! snapshot work dominated by the reads between loads.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// An `Arc<T>` slot with wait-free [`ArcSwapCell::load`] and atomic
/// [`ArcSwapCell::store`] publication.
pub struct ArcSwapCell<T> {
    /// Raw pointer produced by `Arc::into_raw`; the cell owns exactly
    /// one strong count on whatever it currently points at.
    ptr: AtomicPtr<T>,
    /// In-flight readers between announce and retire.
    readers: AtomicUsize,
    /// The cell semantically owns an `Arc<T>`, so it must inherit its
    /// auto traits instead of `AtomicPtr`'s unconditional ones.
    _own: PhantomData<Arc<T>>,
}

impl<T> ArcSwapCell<T> {
    /// A cell initially publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwapCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            _own: PhantomData,
        }
    }

    /// Takes a counted reference to the current value. Wait-free: two
    /// atomic RMWs and one atomic load, never a lock, never a spin.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let raw = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `raw` came from `Arc::into_raw` and its strong count
        // cannot reach zero here: the only place the cell's reference is
        // dropped is `store`'s post-drain drop, and the drain cannot
        // pass while our announce is visible — if our announce ordered
        // after the swap instead, this load already sees the new
        // pointer, whose reference the swapper still holds.
        let arc = unsafe {
            Arc::increment_strong_count(raw);
            Arc::from_raw(raw)
        };
        self.readers.fetch_sub(1, Ordering::Release);
        arc
    }

    /// Publishes `value` and drops the cell's reference to the previous
    /// one once in-flight loads have drained. Callers must serialize
    /// swaps externally (the shard write lock does).
    pub fn store(&self, value: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(value).cast_mut(), Ordering::SeqCst);
        // Drain: any reader that announced before the swap may still be
        // between its pointer load and its count increment; wait it out.
        // Readers finishing after the swap saw the new pointer, so they
        // only delay us, never race the drop.
        let mut spins = 0u32;
        while self.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw`; the drain guarantees
        // every reader that could have loaded it holds its own count.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for ArcSwapCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access — no loads or stores can be in
        // flight — and the pointer carries the cell's strong count.
        unsafe { drop(Arc::from_raw(*self.ptr.get_mut())) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwapCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_the_stored_value() {
        let cell = ArcSwapCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn loads_keep_old_values_alive_across_swaps() {
        let cell = ArcSwapCell::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*pinned, vec![1, 2, 3], "pinned load survives the swap");
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn dropping_the_cell_releases_exactly_one_count() {
        let value = Arc::new(42u32);
        let cell = ArcSwapCell::new(Arc::clone(&value));
        assert_eq!(Arc::strong_count(&value), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn store_releases_the_previous_value() {
        let first = Arc::new(1u32);
        let cell = ArcSwapCell::new(Arc::clone(&first));
        cell.store(Arc::new(2));
        assert_eq!(
            Arc::strong_count(&first),
            1,
            "cell must drop its reference to the swapped-out value"
        );
    }

    /// Hammer concurrent loads against swaps: every load must observe a
    /// fully-formed value (the refcount protocol never hands out a
    /// freed pointer — ASAN/MIRI-visible if it ever does).
    #[test]
    fn concurrent_loads_and_stores_stay_sound() {
        let cell = Arc::new(ArcSwapCell::new(Arc::new(0usize)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let v = *cell.load();
                    assert!(v >= last, "published values are monotonic");
                    last = v;
                }
            }));
        }
        for i in 1..=2000 {
            cell.store(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 2000);
    }
}
