//! Parser and serializer for the XML-ish wire format of Table 1.
//!
//! Records look like `<src="S1" dst="Internet" route="ToR1,Core1"/>`. This
//! is not real XML (bare `key="value"` pairs, no element name), so we
//! implement the small grammar directly:
//!
//! ```text
//! record  := '<' attr (ws attr)* '/'? '>'
//! attr    := key '=' '"' value '"'
//! ```
//!
//! The leading attribute key dispatches the record kind: `src` → network,
//! `hw` → hardware, `pgm` → software.

use crate::record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};

/// Errors from parsing the Table-1 wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// Input was not shaped like `<.../>`.
    Malformed(String),
    /// A required attribute is missing.
    MissingAttr(&'static str, String),
    /// The leading attribute does not identify a known record kind.
    UnknownKind(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Malformed(s) => write!(f, "malformed record: {s}"),
            FormatError::MissingAttr(a, s) => write!(f, "missing attribute {a:?} in {s}"),
            FormatError::UnknownKind(s) => write!(f, "unknown record kind: {s}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Parses one record line.
///
/// # Errors
///
/// Returns a [`FormatError`] describing the first problem found.
pub fn parse_record(line: &str) -> Result<DependencyRecord, FormatError> {
    let attrs = parse_attrs(line)?;
    let get = |key: &'static str| -> Result<&str, FormatError> {
        attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| FormatError::MissingAttr(key, line.trim().to_string()))
    };
    match attrs.first().map(|(k, _)| k.as_str()) {
        Some("src") => Ok(DependencyRecord::Network(NetworkDep {
            src: get("src")?.to_string(),
            dst: get("dst")?.to_string(),
            route: split_list(get("route")?),
        })),
        Some("hw") => Ok(DependencyRecord::Hardware(HardwareDep {
            hw: get("hw")?.to_string(),
            hw_type: get("type")?.to_string(),
            dep: get("dep")?.to_string(),
        })),
        Some("pgm") => Ok(DependencyRecord::Software(SoftwareDep {
            pgm: get("pgm")?.to_string(),
            hw: get("hw")?.to_string(),
            deps: split_list(get("dep")?),
        })),
        Some(other) => Err(FormatError::UnknownKind(other.to_string())),
        None => Err(FormatError::Malformed(line.trim().to_string())),
    }
}

/// Parses a whole document: one record per non-empty line; `#` comments and
/// `---` separators (as in the paper's Figure 3) are skipped.
///
/// # Errors
///
/// Fails on the first malformed record, reporting its content.
pub fn parse_records(text: &str) -> Result<Vec<DependencyRecord>, FormatError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('-'))
        .map(parse_record)
        .collect()
}

/// Serializes a record back to its Table-1 line form.
pub fn serialize_record(rec: &DependencyRecord) -> String {
    serialize_record_ref(match rec {
        DependencyRecord::Network(n) => crate::depdb::DepRecordRef::Network(n),
        DependencyRecord::Hardware(h) => crate::depdb::DepRecordRef::Hardware(h),
        DependencyRecord::Software(s) => crate::depdb::DepRecordRef::Software(s),
    })
}

/// [`serialize_record`] over a borrowed record view — lets full-database
/// passes ([`crate::DepDb::save`]) stream straight from
/// [`crate::DepDb::records_iter`] without cloning every record first.
pub fn serialize_record_ref(rec: crate::depdb::DepRecordRef<'_>) -> String {
    use crate::depdb::DepRecordRef;
    match rec {
        DepRecordRef::Network(n) => format!(
            "<src=\"{}\" dst=\"{}\" route=\"{}\"/>",
            n.src,
            n.dst,
            n.route.join(",")
        ),
        DepRecordRef::Hardware(h) => {
            format!(
                "<hw=\"{}\" type=\"{}\" dep=\"{}\"/>",
                h.hw, h.hw_type, h.dep
            )
        }
        DepRecordRef::Software(s) => format!(
            "<pgm=\"{}\" hw=\"{}\" dep=\"{}\"/>",
            s.pgm,
            s.hw,
            s.deps.join(",")
        ),
    }
}

/// Serializes many records, one per line.
pub fn serialize_records(recs: &[DependencyRecord]) -> String {
    recs.iter()
        .map(serialize_record)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Splits a comma-separated value list, dropping empty items.
fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Tokenizes `<k1="v1" k2="v2"/>` into ordered attribute pairs.
fn parse_attrs(line: &str) -> Result<Vec<(String, String)>, FormatError> {
    let s = line.trim();
    let malformed = || FormatError::Malformed(s.to_string());
    let inner = s
        .strip_prefix('<')
        .and_then(|t| t.strip_suffix('>'))
        .ok_or_else(malformed)?;
    let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
    let mut attrs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(malformed)?;
        let key = rest[..eq].trim();
        if key.is_empty() || !key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(malformed());
        }
        let after = &rest[eq + 1..];
        let after = after.strip_prefix('"').ok_or_else(malformed)?;
        let close = after.find('"').ok_or_else(malformed)?;
        attrs.push((key.to_string(), after[..close].to_string()));
        rest = after[close + 1..].trim_start();
    }
    if attrs.is_empty() {
        return Err(malformed());
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_network_record() {
        let r = parse_record(r#"<src="S1" dst="Internet" route="ToR1,Core1"/>"#).unwrap();
        match r {
            DependencyRecord::Network(n) => {
                assert_eq!(n.src, "S1");
                assert_eq!(n.dst, "Internet");
                assert_eq!(n.route, vec!["ToR1", "Core1"]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_hardware_record() {
        let r = parse_record(r#"<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>"#).unwrap();
        match r {
            DependencyRecord::Hardware(h) => {
                assert_eq!(h.hw, "S1");
                assert_eq!(h.hw_type, "CPU");
                assert_eq!(h.dep, "S1-Intel(R)X5550@2.6GHz");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_software_record_without_self_closing_slash() {
        // Figure 3 of the paper writes software records as <...> without /.
        let r = parse_record(r#"<pgm="Riak1" hw="S1" dep="libc6,libsvn1">"#).unwrap();
        match r {
            DependencyRecord::Software(s) => {
                assert_eq!(s.pgm, "Riak1");
                assert_eq!(s.hw, "S1");
                assert_eq!(s.deps, vec!["libc6", "libsvn1"]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_figure3_document() {
        let doc = r#"
            # Network dependencies of S1 and S2:
            <src="S1" dst="Internet" route="ToR1,Core1"/>
            <src="S1" dst="Internet" route="ToR1,Core2"/>
            <src="S2" dst="Internet" route="ToR1,Core1"/>
            <src="S2" dst="Internet" route="ToR1,Core2"/>
            ------------------------------------
            <hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
            <hw="S1" type="Disk" dep="S1-SED900"/>
            <hw="S2" type="CPU" dep="S2-Intel(R)X5550@2.6GHz"/>
            <hw="S2" type="Disk" dep="S2-SED900"/>
            ------------------------------------
            <pgm="QueryEngine1" hw="S1" dep="libc6,libgccl">
            <pgm="Riak1" hw="S1" dep="libc6,libsvn1">
            <pgm="QueryEngine2" hw="S2" dep="libc6,libgccl">
            <pgm="Riak2" hw="S2" dep="libc6,libsvn1">
        "#;
        let records = parse_records(doc).unwrap();
        assert_eq!(records.len(), 12);
        assert_eq!(records.iter().filter(|r| r.kind() == "network").count(), 4);
        assert_eq!(records.iter().filter(|r| r.kind() == "hardware").count(), 4);
        assert_eq!(records.iter().filter(|r| r.kind() == "software").count(), 4);
    }

    #[test]
    fn roundtrip_through_serializer() {
        let doc = concat!(
            "<src=\"S1\" dst=\"Internet\" route=\"ToR1,Core1\"/>\n",
            "<hw=\"S1\" type=\"Disk\" dep=\"S1-SED900\"/>\n",
            "<pgm=\"Riak1\" hw=\"S1\" dep=\"libc6,libsvn1\"/>"
        );
        let records = parse_records(doc).unwrap();
        let text = serialize_records(&records);
        assert_eq!(parse_records(&text).unwrap(), records);
    }

    #[test]
    fn missing_attr_reported() {
        let err = parse_record(r#"<src="S1" route="x"/>"#).unwrap_err();
        assert!(matches!(err, FormatError::MissingAttr("dst", _)));
    }

    #[test]
    fn unknown_kind_reported() {
        let err = parse_record(r#"<foo="bar"/>"#).unwrap_err();
        assert_eq!(err, FormatError::UnknownKind("foo".into()));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "src=\"S1\"",
            "<src=S1/>",
            "<src=\"S1/>",
            "<=\"x\"/>",
            "<>",
        ] {
            assert!(parse_record(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_route_items_dropped() {
        let r = parse_record(r#"<src="S1" dst="D" route="a,,b,"/>"#).unwrap();
        match r {
            DependencyRecord::Network(n) => assert_eq!(n.route, vec!["a", "b"]),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
