//! Dependency record types matching Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// A network dependency: a route from `src` to `dst` through intermediate
/// network devices.
///
/// Wire form: `<src="S" dst="D" route="x,y,z"/>`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetworkDep {
    /// Source host.
    pub src: String,
    /// Destination host (often "Internet").
    pub dst: String,
    /// Devices along the path, in order.
    pub route: Vec<String>,
}

/// A hardware dependency: a physical component of a host.
///
/// Wire form: `<hw="H" type="T" dep="x"/>`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HardwareDep {
    /// The host owning the component.
    pub hw: String,
    /// Component type: "CPU", "Disk", "RAM", ...
    pub hw_type: String,
    /// Component identifier (model or instance id).
    pub dep: String,
}

/// A software dependency: a program and the packages it uses.
///
/// Wire form: `<pgm="S" hw="H" dep="x,y,z"/>`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoftwareDep {
    /// The software component itself.
    pub pgm: String,
    /// The host it runs on.
    pub hw: String,
    /// Packages/libraries the program depends on.
    pub deps: Vec<String>,
}

/// Any dependency record, tagged by kind.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependencyRecord {
    /// Network route record.
    Network(NetworkDep),
    /// Hardware component record.
    Hardware(HardwareDep),
    /// Software package record.
    Software(SoftwareDep),
}

impl DependencyRecord {
    /// The host this record belongs to (route source, component owner, or
    /// the host a program runs on).
    pub fn host(&self) -> &str {
        match self {
            DependencyRecord::Network(n) => &n.src,
            DependencyRecord::Hardware(h) => &h.hw,
            DependencyRecord::Software(s) => &s.hw,
        }
    }

    /// A short kind tag, useful for stats and filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            DependencyRecord::Network(_) => "network",
            DependencyRecord::Hardware(_) => "hardware",
            DependencyRecord::Software(_) => "software",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_extraction() {
        let n = DependencyRecord::Network(NetworkDep {
            src: "S1".into(),
            dst: "Internet".into(),
            route: vec!["ToR1".into()],
        });
        let h = DependencyRecord::Hardware(HardwareDep {
            hw: "S2".into(),
            hw_type: "CPU".into(),
            dep: "x".into(),
        });
        let s = DependencyRecord::Software(SoftwareDep {
            pgm: "Riak".into(),
            hw: "S3".into(),
            deps: vec![],
        });
        assert_eq!(n.host(), "S1");
        assert_eq!(h.host(), "S2");
        assert_eq!(s.host(), "S3");
        assert_eq!(n.kind(), "network");
        assert_eq!(h.kind(), "hardware");
        assert_eq!(s.kind(), "software");
    }
}
