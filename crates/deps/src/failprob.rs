//! Failure-probability models (§5.1).
//!
//! The paper proposes two practical sources of failure probabilities:
//! Gill et al.'s measurement methodology for network devices (annual
//! failure probability per device type) and CVSS scores for software
//! packages. [`FailureProbModel`] encodes both as longest-prefix rules over
//! component names, with a configurable default for unmatched components.

use serde::{Deserialize, Serialize};

/// Prefix-rule failure-probability model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureProbModel {
    /// `(name_prefix, probability)` rules; the *longest* matching prefix
    /// wins, so "core-" can override "co-".
    rules: Vec<(String, f64)>,
    /// Probability for components matching no rule.
    default: f64,
}

impl FailureProbModel {
    /// Creates a model with the given default probability.
    ///
    /// # Panics
    ///
    /// Panics if `default` is outside `[0, 1]`.
    pub fn new(default: f64) -> Self {
        assert!((0.0..=1.0).contains(&default), "default must be in [0,1]");
        FailureProbModel {
            rules: Vec::new(),
            default,
        }
    }

    /// Adds a prefix rule (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_rule(mut self, prefix: impl Into<String>, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        self.rules.push((prefix.into(), prob));
        self
    }

    /// The annual failure probability for a component name.
    pub fn prob_for(&self, name: &str) -> f64 {
        self.rules
            .iter()
            .filter(|(p, _)| name.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, prob)| prob)
            .unwrap_or(self.default)
    }

    /// A model following the shape of Gill et al.'s data-center device
    /// measurements [22]: ToR switches are the most reliable devices,
    /// aggregation switches fail more, core/load-balancing gear the most;
    /// servers sit in between. Numbers are annualized probabilities.
    pub fn gill_defaults() -> Self {
        Self::new(0.05)
            .with_rule("tor", 0.05)
            .with_rule("agg", 0.10)
            .with_rule("core", 0.12)
            .with_rule("lb", 0.20)
            .with_rule("server", 0.08)
            .with_rule("rack", 0.05)
            .with_rule("switch", 0.09)
            .with_rule("router", 0.12)
    }

    /// Converts a CVSS base score (0–10) into a rough annual
    /// exploitation/failure probability for a software package, linearly
    /// capped at 0.5 — the paper only requires *relative* ranking, so the
    /// scale factor is unimportant.
    pub fn prob_from_cvss(score: f64) -> f64 {
        (score.clamp(0.0, 10.0) / 10.0 * 0.5).min(0.5)
    }
}

/// Component failure observations over a measurement window, implementing
/// Gill et al.'s estimator [22] the paper proposes in §5.1: the failure
/// probability of a device *type* is the number of devices of that type
/// that ever failed during the window divided by the type's population.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailureObservations {
    /// type → (devices that failed at least once, total population).
    counts: std::collections::BTreeMap<String, (u64, u64)>,
}

impl FailureObservations {
    /// Creates an empty observation log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `population` deployed devices of `device_type`.
    pub fn observe_population(&mut self, device_type: impl Into<String>, population: u64) {
        self.counts.entry(device_type.into()).or_insert((0, 0)).1 += population;
    }

    /// Registers that `failed` distinct devices of `device_type` failed at
    /// least once during the window.
    ///
    /// # Panics
    ///
    /// Panics if more failures than population are recorded.
    pub fn observe_failures(&mut self, device_type: impl Into<String>, failed: u64) {
        let entry = self.counts.entry(device_type.into()).or_insert((0, 0));
        entry.0 += failed;
        assert!(
            entry.0 <= entry.1,
            "more failed devices than population for this type"
        );
    }

    /// The estimated failure probability for one device type, if observed.
    pub fn estimate(&self, device_type: &str) -> Option<f64> {
        self.counts
            .get(device_type)
            .filter(|&&(_, pop)| pop > 0)
            .map(|&(failed, pop)| failed as f64 / pop as f64)
    }

    /// Builds a prefix-rule model from the observations (device type names
    /// double as the name prefixes, matching this crate's topology naming).
    pub fn to_model(&self, default: f64) -> FailureProbModel {
        let mut model = FailureProbModel::new(default);
        for (ty, &(failed, pop)) in &self.counts {
            if pop > 0 {
                model = model.with_rule(ty.clone(), failed as f64 / pop as f64);
            }
        }
        model
    }
}

/// A CVSS v2 base vector (§5.1 points at CVSS as the failure-probability
/// source for software components).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CvssV2 {
    /// Access vector: Local, Adjacent or Network.
    pub access_vector: AccessVector,
    /// Access complexity: High, Medium or Low.
    pub access_complexity: AccessComplexity,
    /// Authentication: Multiple, Single or None.
    pub authentication: Authentication,
    /// Confidentiality / integrity / availability impacts.
    pub impact: [Impact; 3],
}

/// CVSS v2 AV metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessVector {
    /// Local access required.
    Local,
    /// Adjacent network.
    Adjacent,
    /// Remote network.
    Network,
}

/// CVSS v2 AC metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessComplexity {
    /// Specialized conditions required.
    High,
    /// Somewhat specialized.
    Medium,
    /// No specialized conditions.
    Low,
}

/// CVSS v2 Au metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Authentication {
    /// Multiple authentication rounds.
    Multiple,
    /// One authentication round.
    Single,
    /// No authentication needed.
    None,
}

/// CVSS v2 C/I/A impact levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impact {
    /// No impact.
    None,
    /// Partial impact.
    Partial,
    /// Complete impact.
    Complete,
}

impl CvssV2 {
    /// Computes the CVSS v2 base score (0–10) per the NIST formula.
    pub fn base_score(&self) -> f64 {
        let av = match self.access_vector {
            AccessVector::Local => 0.395,
            AccessVector::Adjacent => 0.646,
            AccessVector::Network => 1.0,
        };
        let ac = match self.access_complexity {
            AccessComplexity::High => 0.35,
            AccessComplexity::Medium => 0.61,
            AccessComplexity::Low => 0.71,
        };
        let au = match self.authentication {
            Authentication::Multiple => 0.45,
            Authentication::Single => 0.56,
            Authentication::None => 0.704,
        };
        let sub = |i: Impact| match i {
            Impact::None => 0.0,
            Impact::Partial => 0.275,
            Impact::Complete => 0.660,
        };
        let impact = 10.41
            * (1.0
                - (1.0 - sub(self.impact[0]))
                    * (1.0 - sub(self.impact[1]))
                    * (1.0 - sub(self.impact[2])));
        let exploitability = 20.0 * av * ac * au;
        let f_impact: f64 = if impact == 0.0 { 0.0 } else { 1.176 };
        let score: f64 = (0.6 * impact + 0.4 * exploitability - 1.5) * f_impact;
        (score.max(0.0) * 10.0).round() / 10.0
    }

    /// The corresponding failure probability for this crate's models.
    pub fn failure_probability(&self) -> f64 {
        FailureProbModel::prob_from_cvss(self.base_score())
    }
}

impl Default for FailureProbModel {
    fn default() -> Self {
        Self::gill_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let m = FailureProbModel::new(0.01)
            .with_rule("co", 0.2)
            .with_rule("core", 0.4);
        assert_eq!(m.prob_for("core-7"), 0.4);
        assert_eq!(m.prob_for("copper"), 0.2);
        assert_eq!(m.prob_for("unknown"), 0.01);
    }

    #[test]
    fn gill_defaults_ordering() {
        let m = FailureProbModel::gill_defaults();
        assert!(m.prob_for("tor-3") < m.prob_for("agg-1"));
        assert!(m.prob_for("agg-1") < m.prob_for("core-1"));
        assert!(m.prob_for("core-1") < m.prob_for("lb-1"));
    }

    #[test]
    fn cvss_conversion_monotone_and_bounded() {
        assert_eq!(FailureProbModel::prob_from_cvss(0.0), 0.0);
        assert!(FailureProbModel::prob_from_cvss(5.0) < FailureProbModel::prob_from_cvss(9.0));
        assert_eq!(FailureProbModel::prob_from_cvss(10.0), 0.5);
        assert_eq!(FailureProbModel::prob_from_cvss(99.0), 0.5);
        assert_eq!(FailureProbModel::prob_from_cvss(-3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn bad_rule_prob_panics() {
        let _ = FailureProbModel::new(0.1).with_rule("x", 1.5);
    }

    #[test]
    fn gill_estimator_basic() {
        let mut obs = FailureObservations::new();
        obs.observe_population("tor", 200);
        obs.observe_failures("tor", 10);
        obs.observe_population("core", 50);
        obs.observe_failures("core", 6);
        assert_eq!(obs.estimate("tor"), Some(0.05));
        assert_eq!(obs.estimate("core"), Some(0.12));
        assert_eq!(obs.estimate("unknown"), None);
        let model = obs.to_model(0.01);
        assert_eq!(model.prob_for("tor-3-1"), 0.05);
        assert_eq!(model.prob_for("core-9"), 0.12);
        assert_eq!(model.prob_for("agg-1"), 0.01);
    }

    #[test]
    #[should_panic(expected = "more failed devices than population")]
    fn gill_estimator_rejects_impossible_counts() {
        let mut obs = FailureObservations::new();
        obs.observe_population("lb", 2);
        obs.observe_failures("lb", 5);
    }

    #[test]
    fn cvss_v2_heartbleed_score() {
        // CVE-2014-0160 (Heartbleed, the paper's motivating software CVE):
        // AV:N/AC:L/Au:N/C:P/I:N/A:N → base score 5.0.
        let v = CvssV2 {
            access_vector: AccessVector::Network,
            access_complexity: AccessComplexity::Low,
            authentication: Authentication::None,
            impact: [Impact::Partial, Impact::None, Impact::None],
        };
        assert_eq!(v.base_score(), 5.0);
    }

    #[test]
    fn cvss_v2_maximal_vector_is_10() {
        let v = CvssV2 {
            access_vector: AccessVector::Network,
            access_complexity: AccessComplexity::Low,
            authentication: Authentication::None,
            impact: [Impact::Complete, Impact::Complete, Impact::Complete],
        };
        assert_eq!(v.base_score(), 10.0);
    }

    #[test]
    fn cvss_v2_no_impact_is_zero() {
        let v = CvssV2 {
            access_vector: AccessVector::Network,
            access_complexity: AccessComplexity::Low,
            authentication: Authentication::None,
            impact: [Impact::None, Impact::None, Impact::None],
        };
        assert_eq!(v.base_score(), 0.0);
        assert_eq!(v.failure_probability(), 0.0);
    }
}
