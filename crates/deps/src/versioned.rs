//! Versioned dependency database for continuous auditing.
//!
//! The paper frames INDaaS as a *service* clouds query before deploying
//! redundancy; follow-up industrial work (AID, arXiv:2109.04893) stresses
//! that dependency data changes continuously. [`VersionedDepDb`] wraps
//! [`DepDb`] with a monotonically increasing **epoch** that advances
//! exactly when the stored record set changes, so downstream consumers
//! (the `indaas-service` audit-result cache in particular) can key work
//! off `(epoch, spec)` and invalidate it precisely when an ingest
//! actually changed something.
//!
//! Ingestion is *incremental*: batches of Table-1 records merge into the
//! live database record by record — no full re-parse, no rebuild — and
//! duplicate reports from periodically re-running collectors are
//! deduplicated without an epoch bump.

use crate::depdb::DepDb;
use crate::format::{parse_records, FormatError};
use crate::record::DependencyRecord;

/// Monotonic database version. Epoch 0 is the empty database.
pub type Epoch = u64;

/// What one ingest/retract batch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records newly inserted (or removed, for retractions).
    pub changed: usize,
    /// Records ignored: duplicate inserts or absent removals.
    pub ignored: usize,
    /// The database epoch after the batch.
    pub epoch: Epoch,
}

/// A [`DepDb`] with an epoch that tracks every effective mutation.
#[derive(Clone, Debug, Default)]
pub struct VersionedDepDb {
    db: DepDb,
    epoch: Epoch,
}

impl VersionedDepDb {
    /// An empty database at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing database; a non-empty seed starts at epoch 1.
    pub fn from_db(db: DepDb) -> Self {
        let epoch = u64::from(!db.is_empty());
        VersionedDepDb { db, epoch }
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Read access to the underlying database.
    pub fn db(&self) -> &DepDb {
        &self.db
    }

    /// Consumes the wrapper, yielding the database.
    pub fn into_db(self) -> DepDb {
        self.db
    }

    /// Ingests a record batch incrementally. The epoch advances by one
    /// if — and only if — at least one record was new; a batch of pure
    /// duplicates leaves the epoch (and therefore every cached audit
    /// keyed on it) untouched.
    pub fn ingest(&mut self, records: impl IntoIterator<Item = DependencyRecord>) -> IngestReport {
        let mut report = IngestReport::default();
        for r in records {
            if self.db.insert(r) {
                report.changed += 1;
            } else {
                report.ignored += 1;
            }
        }
        if report.changed > 0 {
            self.epoch += 1;
        }
        report.epoch = self.epoch;
        report
    }

    /// Parses Table-1 text and ingests it as one batch.
    ///
    /// # Errors
    ///
    /// Returns the parse error without touching the database or epoch —
    /// a malformed batch is rejected atomically.
    pub fn ingest_text(&mut self, text: &str) -> Result<IngestReport, FormatError> {
        let records = parse_records(text)?;
        Ok(self.ingest(records))
    }

    /// Retracts records (exact match), e.g. when a collector observes a
    /// dependency disappear or re-measures a changed route. Bumps the
    /// epoch once if anything was actually removed.
    pub fn retract(&mut self, records: &[DependencyRecord]) -> IngestReport {
        self.retract_refs(records)
    }

    /// [`VersionedDepDb::retract`] over any borrowed record sequence —
    /// lets shard routers hand each shard its slice of a batch without
    /// cloning the records first.
    pub fn retract_refs<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a DependencyRecord>,
    ) -> IngestReport {
        let mut report = IngestReport::default();
        for r in records {
            if self.db.remove(r) {
                report.changed += 1;
            } else {
                report.ignored += 1;
            }
        }
        if report.changed > 0 {
            self.epoch += 1;
        }
        report.epoch = self.epoch;
        report
    }

    /// Atomic update: retract `stale` and ingest `fresh` with a single
    /// epoch bump (if the batch changed anything *net*). This is the
    /// "record update" path of a re-measuring acquisition module.
    ///
    /// A removal cancelled out by re-inserting the identical record
    /// counts as ignored, not changed — a collector re-measuring an
    /// unchanged route must not bump the epoch (and so must not
    /// invalidate caches or trigger snapshot rebuilds downstream).
    pub fn update(
        &mut self,
        stale: &[DependencyRecord],
        fresh: impl IntoIterator<Item = DependencyRecord>,
    ) -> IngestReport {
        self.update_refs(stale, fresh)
    }

    /// [`VersionedDepDb::update`] with borrowed stale records — the
    /// shard-router entry point (fresh records are inserted, so they
    /// stay owned).
    pub fn update_refs<'a>(
        &mut self,
        stale: impl IntoIterator<Item = &'a DependencyRecord>,
        fresh: impl IntoIterator<Item = DependencyRecord>,
    ) -> IngestReport {
        let mut report = IngestReport::default();
        let mut removed: Vec<DependencyRecord> = Vec::new();
        for r in stale {
            if self.db.remove(r) {
                removed.push(r.clone());
            } else {
                report.ignored += 1;
            }
        }
        for r in fresh {
            if self.db.insert(r.clone()) {
                if let Some(pos) = removed.iter().position(|x| *x == r) {
                    // Net no-op: removed then re-inserted identically.
                    removed.remove(pos);
                    report.ignored += 2;
                } else {
                    report.changed += 1;
                }
            } else {
                report.ignored += 1;
            }
        }
        // Removals that no insert cancelled out are real changes.
        report.changed += removed.len();
        if report.changed > 0 {
            self.epoch += 1;
        }
        report.epoch = self.epoch;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: &str) -> DependencyRecord {
        crate::format::parse_record(line).unwrap()
    }

    #[test]
    fn empty_db_is_epoch_zero() {
        let v = VersionedDepDb::new();
        assert_eq!(v.epoch(), 0);
        assert!(v.db().is_empty());
    }

    #[test]
    fn seeded_db_is_epoch_one() {
        let mut v = VersionedDepDb::new();
        v.ingest([rec(r#"<hw="S1" type="CPU" dep="cpu-a"/>"#)]);
        let v2 = VersionedDepDb::from_db(v.into_db());
        assert_eq!(v2.epoch(), 1);
        assert_eq!(VersionedDepDb::from_db(DepDb::new()).epoch(), 0);
    }

    #[test]
    fn ingest_bumps_epoch_once_per_batch() {
        let mut v = VersionedDepDb::new();
        let r = v.ingest([
            rec(r#"<src="S1" dst="Internet" route="tor1,core1"/>"#),
            rec(r#"<hw="S1" type="CPU" dep="cpu-a"/>"#),
        ]);
        assert_eq!((r.changed, r.ignored, r.epoch), (2, 0, 1));
        assert_eq!(v.epoch(), 1);
    }

    #[test]
    fn duplicate_batch_leaves_epoch_untouched() {
        let mut v = VersionedDepDb::new();
        let line = r#"<hw="S1" type="CPU" dep="cpu-a"/>"#;
        v.ingest([rec(line)]);
        let r = v.ingest([rec(line)]);
        assert_eq!((r.changed, r.ignored, r.epoch), (0, 1, 1));
        assert_eq!(v.epoch(), 1);
    }

    #[test]
    fn ingest_text_parses_and_merges() {
        let mut v = VersionedDepDb::new();
        let r = v
            .ingest_text(
                r#"
                <src="S1" dst="Internet" route="tor1,core1"/>
                <pgm="Riak1" hw="S1" dep="libc6"/>
            "#,
            )
            .unwrap();
        assert_eq!(r.changed, 2);
        assert_eq!(v.db().network_deps("S1").len(), 1);
        assert_eq!(v.db().software_deps("S1").len(), 1);
    }

    #[test]
    fn malformed_text_is_rejected_atomically() {
        let mut v = VersionedDepDb::new();
        v.ingest_text(r#"<hw="S1" type="CPU" dep="cpu-a"/>"#)
            .unwrap();
        let before = v.epoch();
        assert!(v.ingest_text("<garbage>").is_err());
        assert_eq!(v.epoch(), before);
        assert_eq!(v.db().len(), 1);
    }

    #[test]
    fn retract_removes_and_bumps() {
        let mut v = VersionedDepDb::new();
        let line = r#"<src="S1" dst="Internet" route="tor1,core1"/>"#;
        v.ingest([rec(line)]);
        let r = v.retract(&[rec(line)]);
        assert_eq!((r.changed, r.epoch), (1, 2));
        assert!(v.db().is_empty());
        // Retracting again is a no-op.
        let r = v.retract(&[rec(line)]);
        assert_eq!((r.changed, r.ignored, r.epoch), (0, 1, 2));
    }

    #[test]
    fn noop_update_keeps_epoch() {
        let mut v = VersionedDepDb::new();
        let r = rec(r#"<src="S1" dst="Internet" route="tor1,core1"/>"#);
        v.ingest([r.clone()]);
        assert_eq!(v.epoch(), 1);
        // Re-measuring an unchanged route: remove + identical re-insert.
        let report = v.update(std::slice::from_ref(&r), [r.clone()]);
        assert_eq!((report.changed, report.ignored, report.epoch), (0, 2, 1));
        assert_eq!(v.epoch(), 1, "net no-op must not bump the epoch");
        assert_eq!(v.db().len(), 1);
    }

    #[test]
    fn update_is_one_epoch_bump() {
        let mut v = VersionedDepDb::new();
        let stale = rec(r#"<src="S1" dst="Internet" route="tor1,core1"/>"#);
        v.ingest([stale.clone()]);
        assert_eq!(v.epoch(), 1);
        let fresh = rec(r#"<src="S1" dst="Internet" route="tor1,core9"/>"#);
        let r = v.update(&[stale], [fresh]);
        assert_eq!((r.changed, r.epoch), (2, 2));
        assert_eq!(v.db().network_deps("S1").len(), 1);
        assert_eq!(v.db().network_deps("S1")[0].route, vec!["tor1", "core9"]);
    }
}
