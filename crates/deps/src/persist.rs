//! Segmented, crash-safe persistence for the sharded dependency store.
//!
//! A big daemon must restart without re-parsing one monolithic Table-1
//! file, and a kill mid-save must never leave a torn file behind. The
//! on-disk layout is one directory per store:
//!
//! ```text
//! db-dir/
//!   MANIFEST.json    # {"format":1,"shards":8,"records":[...]}
//!   shard-0000.tbl   # Table-1 records of shard 0
//!   shard-0001.tbl
//!   ...
//! ```
//!
//! * **Segments** are plain Table-1 text — the same portable format as
//!   [`DepDb::save`] — holding exactly the records that route to their
//!   shard index, so a loader can rebuild per-shard databases without a
//!   routing pass.
//! * **Every file is written atomically** ([`write_atomic`]): contents
//!   go to a temp file in the same directory which is then `rename`d
//!   into place, so readers (and the next boot) see either the old or
//!   the new version of each file, never a prefix.
//! * **Saves are incremental**: [`ShardedDepDb::save_dirty_segments`]
//!   writes only the shards mutated since the last save (each shard
//!   cell carries a dirty flag), which is what the daemon runs on
//!   collector ticks; a full [`ShardedDepDb::save_segments`] happens on
//!   the first save into an empty directory or a shard-count change.
//! * **Loads are parallel**: [`ShardedDepDb::load_segments`] parses
//!   segments on a small worker pool. If the manifest's shard count
//!   matches the requested one (and every record routes to its segment),
//!   shards are rebuilt directly; otherwise all records are merged and
//!   re-routed — which is also the migration path from a different
//!   `--shards` setting or a hand-edited directory.
//! * **Corruption is quarantined, not fatal**: a torn or bit-flipped
//!   segment file is renamed to `<name>.quarantine` and the surviving
//!   shards are served; a garbled `MANIFEST.json` is quarantined the
//!   same way and the directory's segment files are rescanned. Only a
//!   manifest from a *newer* format version still refuses to load —
//!   that is a deliberate downgrade guard, not corruption.
//!   [`ShardedDepDb::open_reporting`] surfaces what was set aside in a
//!   [`LoadReport`] so the daemon can count it.
//! * **The legacy monolithic format loads transparently**:
//!   [`ShardedDepDb::open`] accepts a single Table-1 *file* path too,
//!   routing its records into shards and migrating in place — the file
//!   is preserved as `<path>.legacy.bak` and replaced by a segmented
//!   directory, so the daemon's later saves into the same path just
//!   work.
//!
//! Records land in segment files in [`DepDb::records_iter`] order
//! (sorted by kind then host), so re-saving an unchanged shard is
//! byte-identical — diffs of a db-dir show real changes only.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::depdb::DepDb;
use crate::format::parse_records;
use crate::record::DependencyRecord;
use crate::sharded::{shard_index, ShardedDepDb};
use crate::versioned::Epoch;

/// On-disk format version written into every manifest.
pub const SEGMENT_FORMAT_VERSION: u32 = 1;

/// Manifest file name inside a segmented db directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// The db directory's table of contents.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Manifest {
    /// On-disk format version ([`SEGMENT_FORMAT_VERSION`]).
    pub format: u32,
    /// Number of shard segment files.
    pub shards: usize,
    /// Distinct records per shard at save time. Advisory (a crash
    /// between a segment write and the manifest write can leave counts
    /// behind the files); loaders report mismatches but trust the
    /// segment files, each of which is internally consistent.
    pub records: Vec<usize>,
}

/// Segment file name for shard `shard`.
pub fn segment_file(shard: usize) -> String {
    format!("shard-{shard:04}.tbl")
}

/// What a segmented load set aside instead of serving.
///
/// Each entry is the **quarantine destination** (`<original>.quarantine`)
/// a corrupt segment or manifest was renamed to. An empty report means
/// the directory loaded cleanly.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Files renamed to `*.quarantine` during this load.
    pub quarantined: Vec<PathBuf>,
}

/// `<path>.quarantine` — where a corrupt segment or manifest is set
/// aside so the rest of the directory can be served.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut q = path.as_os_str().to_owned();
    q.push(".quarantine");
    PathBuf::from(q)
}

/// Writes `contents` to `path` crash-safely: the bytes go to a unique
/// temp file in the same directory (same filesystem, so the final
/// `rename` is atomic), and a kill at any point leaves either the old
/// file or the new one — never a torn prefix.
///
/// # Errors
///
/// Propagates I/O failures; the temp file is removed on a failed write.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    // Unique per *call*, not just per process: the daemon's collector
    // tick and its shutdown path can save concurrently, and two writers
    // interleaving on one shared temp file would rename a torn file
    // into place — the exact failure this function exists to prevent.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    if let Err(e) = std::fs::write(&tmp, contents) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Renders one shard's records as a Table-1 segment file body.
fn segment_text(shard: usize, shards: usize, db: &DepDb) -> String {
    let mut text = format!("# INDaaS DepDB segment {shard}/{shards} (Table-1 record format)\n");
    for rec in db.records_iter() {
        text.push_str(&crate::format::serialize_record_ref(rec));
        text.push('\n');
    }
    text
}

fn invalid_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl ShardedDepDb {
    /// Saves every shard as a segment file plus the manifest, creating
    /// `dir` if needed. Each file is written atomically; the manifest
    /// goes last, so a directory with a manifest always has a complete
    /// segment set. Clears every shard's dirty flag. Returns the number
    /// of segment files written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_segments(&self, dir: impl AsRef<Path>) -> io::Result<usize> {
        self.save_segments_inner(dir.as_ref(), false)
    }

    /// Saves only the shards mutated since the last save (plus any
    /// segment file missing on disk), then refreshes the manifest if
    /// anything was written. Falls back to a full [`Self::save_segments`]
    /// when the directory has no manifest yet or was saved with a
    /// different shard count. Returns the number of segment files
    /// written — 0 when nothing changed, making a quiescent daemon's
    /// persistence tick free.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures. A shard whose write failed keeps its
    /// dirty flag, so the next tick retries it.
    pub fn save_dirty_segments(&self, dir: impl AsRef<Path>) -> io::Result<usize> {
        self.save_segments_inner(dir.as_ref(), true)
    }

    fn save_segments_inner(&self, dir: &Path, only_dirty: bool) -> io::Result<usize> {
        // One saver at a time: the daemon's collector tick can race its
        // shutdown save, and unserialized savers could claim dirty
        // flags and rename segments in an order that publishes an older
        // snapshot over a newer one.
        let _saving = self.persist.lock().unwrap_or_else(PoisonError::into_inner);
        // Chaos hook: `db.save` fails the save before any dirty flag is
        // claimed (error/disconnect) or silently skips the tick (drop) —
        // either way every mutated shard stays dirty and the next tick
        // retries.
        match indaas_faultinj::point(indaas_faultinj::points::DB_SAVE) {
            indaas_faultinj::FaultAction::Pass => {}
            indaas_faultinj::FaultAction::Drop => return Ok(0),
            _ => return Err(io::Error::other("injected fault at db.save")),
        }
        std::fs::create_dir_all(dir)?;
        // Dirty-only mode requires a usable manifest with the same
        // shard count; anything else — missing, corrupt, unreadable,
        // different count — degrades to a full save, which rewrites
        // every segment *and* the manifest. A corrupt manifest must
        // heal on the next save, not wedge persistence until shutdown
        // quietly loses acknowledged records.
        let only_dirty = only_dirty
            && match read_manifest(dir) {
                Ok(m) => m.shards == self.num_shards(),
                Err(_) => false,
            };
        let shards = self.num_shards();
        let mut written = 0usize;
        let mut records = Vec::with_capacity(shards);
        for (s, cell) in self.shards.iter().enumerate() {
            let path = dir.join(segment_file(s));
            // Claim the dirty flag *before* loading the snapshot: a
            // mutation landing in between re-sets it and the next save
            // picks the shard up again — never a lost update.
            let was_dirty = cell.dirty.swap(false, Ordering::AcqRel);
            let snap = cell.snap.load();
            records.push(snap.len());
            if only_dirty && !was_dirty && path.exists() {
                continue;
            }
            if let Err(e) = write_atomic(&path, &segment_text(s, shards, &snap)) {
                cell.dirty.store(true, Ordering::Release);
                return Err(e);
            }
            written += 1;
        }
        if written > 0 || !dir.join(MANIFEST_FILE).exists() {
            let manifest = Manifest {
                format: SEGMENT_FORMAT_VERSION,
                shards,
                records,
            };
            let json = serde_json::to_string(&manifest)
                .map_err(|e| io::Error::other(format!("manifest serialization: {e}")))?;
            write_atomic(dir.join(MANIFEST_FILE), &format!("{json}\n"))?;
        }
        Ok(written)
    }

    /// Loads a segmented db directory into a store with `shards` shards,
    /// parsing segment files in parallel. A manifest saved with the same
    /// shard count rebuilds shards directly; any mismatch (different
    /// count, or a record routed to the wrong segment by a hand edit)
    /// merges and re-routes every record instead.
    ///
    /// Corrupt files do not abort the load: a torn or bit-flipped
    /// segment is renamed to `<name>.quarantine` and its shard served
    /// empty; an unparseable manifest is quarantined too and the
    /// directory's `shard-NNNN.tbl` files are rescanned directly. Use
    /// [`Self::load_segments_reporting`] to observe what was set aside.
    ///
    /// # Errors
    ///
    /// `NotFound` when the directory or manifest is missing; `InvalidData`
    /// for a manifest from a *newer* format version (downgrade guard);
    /// other I/O errors pass through.
    pub fn load_segments(dir: impl AsRef<Path>, shards: usize) -> io::Result<ShardedDepDb> {
        Self::load_segments_reporting(dir, shards).map(|(store, _)| store)
    }

    /// [`Self::load_segments`] plus the [`LoadReport`] of quarantined
    /// files, so a daemon boot can count (and log) what it set aside.
    ///
    /// # Errors
    ///
    /// See [`Self::load_segments`].
    pub fn load_segments_reporting(
        dir: impl AsRef<Path>,
        shards: usize,
    ) -> io::Result<(ShardedDepDb, LoadReport)> {
        let dir = dir.as_ref();
        // Chaos hook: `db.load` makes boot-time recovery fail outright —
        // every fault class surfaces as a load error (a disk has no
        // connection to drop).
        if indaas_faultinj::point(indaas_faultinj::points::DB_LOAD)
            != indaas_faultinj::FaultAction::Pass
        {
            return Err(io::Error::other("injected fault at db.load"));
        }
        let mut report = LoadReport::default();
        let manifest = match read_manifest(dir) {
            Ok(m) => Some(m),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Garbled table of contents: quarantine it and trust the
                // segment files, each of which is internally consistent.
                let mpath = dir.join(MANIFEST_FILE);
                let q = quarantine_path(&mpath);
                let _ = std::fs::rename(&mpath, &q);
                indaas_obs::log::warn(
                    "persist",
                    &format!("quarantined corrupt manifest {}: {e}", mpath.display()),
                );
                report.quarantined.push(q);
                None
            }
            Err(e) => return Err(e),
        };
        let segments_on_disk = match &manifest {
            Some(m) => {
                if m.format > SEGMENT_FORMAT_VERSION {
                    return Err(invalid_data(format!(
                        "segment format {} is newer than supported {SEGMENT_FORMAT_VERSION}",
                        m.format
                    )));
                }
                m.shards
            }
            None => scan_segment_count(dir)?,
        };
        let segments = load_segment_files(dir, segments_on_disk, &mut report)?;
        let routed_ok = manifest.is_some()
            && shards == segments_on_disk
            && segments
                .iter()
                .enumerate()
                .all(|(s, records)| records.iter().all(|r| shard_index(r.host(), shards) == s));
        let non_empty = segments.iter().any(|records| !records.is_empty());
        let store = if routed_ok {
            let routed: Vec<DepDb> = segments.into_iter().map(DepDb::from_records).collect();
            ShardedDepDb::from_routed(routed, Epoch::from(non_empty))
        } else {
            // Shard-count migration (or a repaired hand edit, or a lost
            // manifest): one merge + re-route pass, exactly like seeding
            // from a monolith.
            let merged = DepDb::from_records(segments.into_iter().flatten());
            ShardedDepDb::from_db(merged, shards)
        };
        Ok((store, report))
    }

    /// Opens a dependency store from `path`, whatever its format:
    ///
    /// * a directory with a manifest — segmented load
    ///   ([`Self::load_segments`]);
    /// * a plain file — the legacy monolithic Table-1 format, **migrated
    ///   in place**: the file is preserved as `<path>.legacy.bak` and
    ///   replaced by a segmented directory at the same path, so every
    ///   subsequent save (the daemon saves into this same path) just
    ///   works;
    /// * a missing path — an empty store (the directory is created by
    ///   the first save).
    ///
    /// # Errors
    ///
    /// `InvalidData` for malformed content; `NotFound` only for a
    /// directory that exists but has no manifest *and* is non-empty
    /// (refusing to silently shadow unknown data); other I/O errors
    /// pass through. A failed migration never loses data: the original
    /// file survives (at its own path or as the `.legacy.bak`).
    pub fn open(path: impl AsRef<Path>, shards: usize) -> io::Result<ShardedDepDb> {
        Self::open_reporting(path, shards).map(|(store, _)| store)
    }

    /// [`Self::open`] plus the [`LoadReport`] of files a segmented load
    /// quarantined (always empty for the legacy/missing-path shapes).
    ///
    /// # Errors
    ///
    /// See [`Self::open`].
    pub fn open_reporting(
        path: impl AsRef<Path>,
        shards: usize,
    ) -> io::Result<(ShardedDepDb, LoadReport)> {
        let path = path.as_ref();
        let backup = legacy_backup_path(path);
        if !path.exists() {
            if backup.is_file() {
                // A crash between a migration's rename and its first
                // segment write left the records only in the backup:
                // resume instead of silently booting an empty store.
                return Ok((
                    Self::migrate_legacy(path, &backup, shards)?,
                    LoadReport::default(),
                ));
            }
            return Ok((ShardedDepDb::new(shards), LoadReport::default()));
        }
        if path.is_dir() {
            if path.join(MANIFEST_FILE).exists() {
                return Self::load_segments_reporting(path, shards);
            }
            if backup.is_file() {
                // Partially-written migration target (crash before the
                // manifest landed): the backup is authoritative; redo.
                return Ok((
                    Self::migrate_legacy(path, &backup, shards)?,
                    LoadReport::default(),
                ));
            }
            if std::fs::read_dir(path)?.next().is_none() {
                return Ok((ShardedDepDb::new(shards), LoadReport::default()));
            }
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "{} has no {MANIFEST_FILE} but is not empty; refusing to treat it as a db dir",
                    path.display()
                ),
            ));
        }
        // Legacy monolithic Table-1 file: set it aside as the backup
        // (atomic rename — the records always exist in full somewhere),
        // then write the segmented layout where it stood. A crash at
        // any point is recovered by the resume branches above on the
        // next open.
        std::fs::rename(path, &backup)?;
        Ok((
            Self::migrate_legacy(path, &backup, shards)?,
            LoadReport::default(),
        ))
    }

    /// Loads the legacy monolithic `backup` and writes it as a
    /// segmented directory at `dir` — both the fresh-migration tail and
    /// the crash-resume path.
    fn migrate_legacy(dir: &Path, backup: &Path, shards: usize) -> io::Result<ShardedDepDb> {
        let store = ShardedDepDb::from_db(DepDb::load(backup)?, shards);
        store.save_segments(dir)?;
        Ok(store)
    }
}

/// `<path>.legacy.bak` — where a migrated monolithic file is preserved.
fn legacy_backup_path(path: &Path) -> PathBuf {
    let mut backup = path.as_os_str().to_owned();
    backup.push(".legacy.bak");
    PathBuf::from(backup)
}

fn read_manifest(dir: &Path) -> io::Result<Manifest> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
    let manifest: Manifest = serde_json::from_str(text.trim())
        .map_err(|e| invalid_data(format!("bad {MANIFEST_FILE}: {e}")))?;
    if manifest.shards == 0 {
        return Err(invalid_data(format!(
            "bad {MANIFEST_FILE}: zero shard count"
        )));
    }
    Ok(manifest)
}

/// Highest `shard-NNNN.tbl` index present in `dir`, plus one — how many
/// segment slots to scan when the manifest is gone. Quarantine files and
/// foreign names are ignored.
fn scan_segment_count(dir: &Path) -> io::Result<usize> {
    let mut count = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("shard-")
            .and_then(|rest| rest.strip_suffix(".tbl"))
            .and_then(|digits| digits.parse::<usize>().ok())
        {
            count = count.max(idx + 1);
        }
    }
    Ok(count)
}

/// Reads and parses all segment files on a small worker pool (disk and
/// parse work overlap across segments; restart time is bounded by the
/// largest shard, not the sum).
///
/// Corruption is contained per segment: a file that fails to read as
/// UTF-8 or parse as Table-1 records is renamed to `<name>.quarantine`
/// (recorded in `report`) and its slot served empty; a *missing* segment
/// is served empty with a warning (nothing to set aside). Environmental
/// I/O errors — permissions, dying disk — still abort the load.
fn load_segment_files(
    dir: &Path,
    shards: usize,
    report: &mut LoadReport,
) -> io::Result<Vec<Vec<DependencyRecord>>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
        .min(shards.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Vec<DependencyRecord>>>> = Mutex::new(vec![None; shards]);
    let quarantined: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= shards {
                    return;
                }
                let path = dir.join(segment_file(s));
                let parsed = std::fs::read_to_string(&path).and_then(|text| {
                    parse_records(&text)
                        .map_err(|e| invalid_data(format!("{}: {e}", path.display())))
                });
                let records = match parsed {
                    Ok(records) => records,
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        // Torn, bit-flipped, or hand-mangled: set the
                        // file aside and serve the shard empty — the
                        // other shards' records must survive a single
                        // bad segment.
                        let q = quarantine_path(&path);
                        let _ = std::fs::rename(&path, &q);
                        indaas_obs::log::warn(
                            "persist",
                            &format!("quarantined corrupt segment {}: {e}", path.display()),
                        );
                        quarantined
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(q);
                        Vec::new()
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        indaas_obs::log::warn(
                            "persist",
                            &format!("segment {} missing; serving it empty", path.display()),
                        );
                        Vec::new()
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get_or_insert(e);
                        return;
                    }
                };
                results.lock().unwrap_or_else(PoisonError::into_inner)[s] = Some(records);
            });
        }
    });
    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }
    report.quarantined.append(
        &mut quarantined
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    );
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(s, r)| {
            r.ok_or_else(|| invalid_data(format!("segment {} never parsed", segment_file(s))))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depdb::DepView;
    use crate::format::parse_record;
    use crate::record::DependencyRecord;

    fn rec(line: &str) -> DependencyRecord {
        parse_record(line).unwrap()
    }

    fn sample_records(hosts: usize) -> Vec<DependencyRecord> {
        (0..hosts)
            .flat_map(|h| {
                [
                    rec(&format!("<hw=\"srv-{h}\" type=\"CPU\" dep=\"cpu-{h}\"/>")),
                    rec(&format!(
                        "<src=\"srv-{h}\" dst=\"Internet\" route=\"tor-{},core-1\"/>",
                        h % 3
                    )),
                ]
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("indaas-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_roundtrip_preserves_records_and_routing() {
        let dir = temp_dir("roundtrip");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        let written = store.save_segments(&dir).unwrap();
        assert_eq!(written, 4);
        let back = ShardedDepDb::load_segments(&dir, 4).unwrap();
        assert_eq!(back.len(), store.len());
        for s in 0..4 {
            assert_eq!(back.shard_len(s), store.shard_len(s), "shard {s} differs");
        }
        assert_eq!(back.epoch(), 1, "non-empty load seeds epoch 1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_save_writes_only_mutated_shards() {
        let dir = temp_dir("dirty");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        assert_eq!(store.save_segments(&dir).unwrap(), 4);
        // Nothing changed: zero segments written.
        assert_eq!(store.save_dirty_segments(&dir).unwrap(), 0);
        // One host's shard changes: exactly one segment rewritten.
        let report = store.ingest([rec("<hw=\"srv-0\" type=\"Disk\" dep=\"disk-new\"/>")]);
        assert_eq!(report.touched.len(), 1);
        assert_eq!(store.save_dirty_segments(&dir).unwrap(), 1);
        let back = ShardedDepDb::load_segments(&dir, 4).unwrap();
        assert_eq!(back.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_change_reroutes_on_load() {
        let dir = temp_dir("reroute");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        store.save_segments(&dir).unwrap();
        let wider = ShardedDepDb::load_segments(&dir, 9).unwrap();
        assert_eq!(wider.num_shards(), 9);
        assert_eq!(wider.len(), store.len());
        let (a, b) = (store.snapshot(), wider.snapshot());
        for host in crate::depdb::DepView::hosts(&a) {
            assert_eq!(a.component_set_of(&host), b.component_set_of(&host));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_handles_all_three_shapes() {
        // Missing path: empty store.
        let missing = temp_dir("open-missing");
        let empty = ShardedDepDb::open(&missing, 4).unwrap();
        assert!(empty.is_empty());
        // Legacy monolithic file: routed into shards and migrated in
        // place — the file becomes a segmented directory, the original
        // bytes survive as `<path>.legacy.bak`.
        let dir = temp_dir("open-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let mono_path = dir.join("deps.tbl");
        let mono = DepDb::from_records(sample_records(7));
        mono.save(&mono_path).unwrap();
        let migrated = ShardedDepDb::open(&mono_path, 4).unwrap();
        assert_eq!(migrated.len(), mono.len());
        assert!(mono_path.is_dir(), "file migrates to a segmented dir");
        assert!(mono_path.join(MANIFEST_FILE).exists());
        let backup = dir.join("deps.tbl.legacy.bak");
        assert_eq!(DepDb::load(&backup).unwrap().len(), mono.len());
        // The migrated path now opens as a segmented directory, and
        // saves into it succeed (the whole point of migrating).
        let reopened = ShardedDepDb::open(&mono_path, 4).unwrap();
        assert_eq!(reopened.len(), mono.len());
        assert_eq!(reopened.save_dirty_segments(&mono_path).unwrap(), 0);
        // Non-empty directory without a manifest is refused.
        let err = ShardedDepDb::open(&dir, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_save_heals_a_corrupt_manifest() {
        let dir = temp_dir("healmanifest");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        store.save_segments(&dir).unwrap();
        // Corrupt the manifest after boot (torn copy, external edit):
        // the next dirty save must degrade to a full save that rewrites
        // it, not wedge persistence until shutdown loses data.
        std::fs::write(dir.join(MANIFEST_FILE), "{torn").unwrap();
        let written = store.save_dirty_segments(&dir).unwrap();
        assert_eq!(written, 4, "corrupt manifest forces a full rewrite");
        let back = ShardedDepDb::load_segments(&dir, 4).unwrap();
        assert_eq!(back.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_legacy_migration_resumes_from_backup() {
        let dir = temp_dir("resume");
        std::fs::create_dir_all(&dir).unwrap();
        let mono = DepDb::from_records(sample_records(9));
        let db_path = dir.join("deps.tbl");
        // Crash shape 1: the rename landed but no segment was written —
        // only the backup exists.
        mono.save(dir.join("deps.tbl.legacy.bak")).unwrap();
        let resumed = ShardedDepDb::open(&db_path, 4).unwrap();
        assert_eq!(resumed.len(), mono.len(), "resume must reload the backup");
        assert!(db_path.join(MANIFEST_FILE).exists());
        // Crash shape 2: a partial segment dir without a manifest plus
        // the backup — the backup stays authoritative.
        std::fs::remove_file(db_path.join(MANIFEST_FILE)).unwrap();
        let resumed = ShardedDepDb::open(&db_path, 4).unwrap();
        assert_eq!(resumed.len(), mono.len());
        assert!(db_path.join(MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_future_format_but_recovers_bad_manifest() {
        let dir = temp_dir("badmanifest");
        // A manifest from a newer format version is a deliberate
        // downgrade guard: still refused.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"format": 99, "shards": 2, "records": [0, 0]}"#,
        )
        .unwrap();
        assert_eq!(
            ShardedDepDb::load_segments(&dir, 4).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_dir_all(&dir).ok();
        // A *garbled* manifest is corruption, not a version skew: it is
        // quarantined and the segment files are rescanned directly.
        let dir = temp_dir("tornmanifest");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        store.save_segments(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "not json").unwrap();
        let (back, report) = ShardedDepDb::load_segments_reporting(&dir, 4).unwrap();
        assert_eq!(back.len(), store.len(), "records survive a torn manifest");
        assert_eq!(report.quarantined.len(), 1);
        assert!(dir.join(format!("{MANIFEST_FILE}.quarantine")).exists());
        // The next save rewrites a clean manifest.
        back.save_segments(&dir).unwrap();
        let healed = ShardedDepDb::load_segments(&dir, 4).unwrap();
        assert_eq!(healed.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_survivors_served() {
        let dir = temp_dir("quarantine");
        let store = ShardedDepDb::new(4);
        store.ingest(sample_records(13));
        store.save_segments(&dir).unwrap();
        // Bit-flip one segment into invalid UTF-8 (a torn page, a bad
        // disk sector): startup must serve the other three shards.
        let victim = dir.join(segment_file(1));
        let victim_len = std::fs::read(&victim).unwrap().len();
        std::fs::write(&victim, [0xFFu8, 0xFE, 0x00, 0x80]).unwrap();
        assert!(victim_len > 0);
        let (back, report) = ShardedDepDb::load_segments_reporting(&dir, 4).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(!victim.exists(), "bad segment renamed away");
        assert!(quarantine_path(&victim).exists());
        assert_eq!(back.shard_len(1), 0, "bad shard served empty");
        let survivors: usize = (0..4).filter(|&s| s != 1).map(|s| store.shard_len(s)).sum();
        assert_eq!(back.len(), survivors, "surviving shards intact");
        // Truncated-but-valid-UTF-8 garbage quarantines the same way.
        let victim = dir.join(segment_file(2));
        std::fs::write(&victim, "<hw=\"srv-").unwrap();
        let (_, report) = ShardedDepDb::load_segments_reporting(&dir, 4).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(quarantine_path(&victim).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
