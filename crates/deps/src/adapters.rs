//! Adapters from raw collector output to Table-1 records (§3).
//!
//! The paper's acquisition pipeline is two-stage: existing tools collect
//! raw dependency data, then per-tool adapters convert it into the common
//! XML-based format. This module implements the adapter stage for the
//! three tools the prototype wraps:
//!
//! * [`parse_nsdminer`] — NSDMiner-style flow summaries
//!   (`src -> dst via dev1,dev2,...`),
//! * [`parse_lshw`] — `lshw -short`-style hardware listings
//!   (`path  class  description`),
//! * [`parse_apt_rdepends`] — `apt-rdepends`-style package closures
//!   (package header lines followed by indented `Depends:` lines).
//!
//! Real deployments would add adapters for their own monitoring systems;
//! the uniform record model is the extension point.

use crate::record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};
use crate::FormatError;

/// Parses NSDMiner-style flow output for `host`.
///
/// Expected line shape (comments `#` and blanks skipped):
///
/// ```text
/// 10.0.0.5 -> Internet via tor-3,agg-1,core-7
/// ```
///
/// # Errors
///
/// Returns [`FormatError::Malformed`] on the first bad line.
pub fn parse_nsdminer(host: &str, raw: &str) -> Result<Vec<DependencyRecord>, FormatError> {
    let mut out = Vec::new();
    for line in raw.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = || FormatError::Malformed(line.to_string());
        let (src, rest) = line.split_once("->").ok_or_else(malformed)?;
        let (dst, devices) = rest.split_once("via").ok_or_else(malformed)?;
        let route: Vec<String> = devices
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if route.is_empty() {
            return Err(malformed());
        }
        if src.trim().is_empty() {
            return Err(malformed());
        }
        out.push(DependencyRecord::Network(NetworkDep {
            // NSDMiner sees flows by address; records are attributed to the
            // audited host's name.
            src: host.to_string(),
            dst: dst.trim().to_string(),
            route,
        }));
    }
    Ok(out)
}

/// Parses `lshw -short`-style output for `host`.
///
/// Expected shape (a header line, then `path  class  description` rows):
///
/// ```text
/// H/W path      Class       Description
/// /0/4          processor   Intel(R) Xeon(R) CPU X5550 @ 2.67GHz
/// /0/100/1f.2   disk        SED900 SSD
/// ```
///
/// Component identifiers are prefixed with the host (hardware is
/// per-machine, as in the paper's Figure 3: `S1-SED900`).
///
/// # Errors
///
/// Returns [`FormatError::Malformed`] on rows without all three columns.
pub fn parse_lshw(host: &str, raw: &str) -> Result<Vec<DependencyRecord>, FormatError> {
    let mut out = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        // Skip the header row.
        if i == 0 && line.to_lowercase().contains("class") {
            continue;
        }
        let mut cols = line.split_whitespace();
        let _path = cols
            .next()
            .ok_or_else(|| FormatError::Malformed(line.into()))?;
        let class = cols
            .next()
            .ok_or_else(|| FormatError::Malformed(line.into()))?;
        let description: Vec<&str> = cols.collect();
        if description.is_empty() {
            return Err(FormatError::Malformed(line.into()));
        }
        out.push(DependencyRecord::Hardware(HardwareDep {
            hw: host.to_string(),
            hw_type: class.to_string(),
            dep: format!("{host}-{}", description.join("-")),
        }));
    }
    Ok(out)
}

/// Parses `apt-rdepends`-style output for a program on `host`.
///
/// Expected shape:
///
/// ```text
/// riak
///   Depends: libc6 (>= 2.15)
///   Depends: erlang-base
/// libc6
///   Depends: libgcc1
/// ```
///
/// The first package name is taken as the program; every `Depends:` target
/// in the whole closure becomes a package dependency (the paper's software
/// failure event ORs over the full closure).
///
/// # Errors
///
/// Returns [`FormatError::Malformed`] if no package header is present.
pub fn parse_apt_rdepends(host: &str, raw: &str) -> Result<Vec<DependencyRecord>, FormatError> {
    let mut program: Option<String> = None;
    let mut deps: Vec<String> = Vec::new();
    for line in raw.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.trim_start().strip_prefix("Depends:") {
            // Strip version constraints like "(>= 2.15)".
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if !name.is_empty() && !deps.contains(&name) {
                deps.push(name);
            }
        } else if !line.starts_with(' ') && !line.starts_with('\t') {
            let name = line.trim().to_string();
            if program.is_none() {
                program = Some(name);
            } else if !deps.contains(&name) {
                // Transitive closure members are dependencies too.
                deps.push(name);
            }
        }
    }
    let pgm = program.ok_or_else(|| FormatError::Malformed("no package header".into()))?;
    // The program itself may appear in its own Depends lines; drop it.
    deps.retain(|d| d != &pgm);
    Ok(vec![DependencyRecord::Software(SoftwareDep {
        pgm,
        hw: host.to_string(),
        deps,
    })])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsdminer_flows() {
        let raw = r#"
            # flows observed over 24h
            10.0.0.5 -> Internet via tor-3,agg-1,core-7
            10.0.0.5 -> Internet via tor-3,agg-2,core-9
        "#;
        let records = parse_nsdminer("S5", raw).unwrap();
        assert_eq!(records.len(), 2);
        match &records[0] {
            DependencyRecord::Network(n) => {
                assert_eq!(n.src, "S5");
                assert_eq!(n.dst, "Internet");
                assert_eq!(n.route, vec!["tor-3", "agg-1", "core-7"]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn nsdminer_rejects_garbage() {
        assert!(parse_nsdminer("S1", "no arrows here").is_err());
        assert!(parse_nsdminer("S1", "a -> b via ").is_err());
    }

    #[test]
    fn lshw_listing() {
        let raw = "H/W path      Class       Description\n\
                   /0/4          processor   Intel Xeon X5550\n\
                   /0/100/1f.2   disk        SED900 SSD\n";
        let records = parse_lshw("S1", raw).unwrap();
        assert_eq!(records.len(), 2);
        match &records[1] {
            DependencyRecord::Hardware(h) => {
                assert_eq!(h.hw, "S1");
                assert_eq!(h.hw_type, "disk");
                assert_eq!(h.dep, "S1-SED900-SSD");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn lshw_per_host_prefix_keeps_hardware_distinct() {
        let raw = "/0/1 disk SED900";
        let s1 = parse_lshw("S1", raw).unwrap();
        let s2 = parse_lshw("S2", raw).unwrap();
        let (DependencyRecord::Hardware(h1), DependencyRecord::Hardware(h2)) = (&s1[0], &s2[0])
        else {
            panic!("wrong kinds");
        };
        assert_ne!(h1.dep, h2.dep, "same model on two hosts is two components");
    }

    #[test]
    fn apt_rdepends_closure() {
        let raw =
            "riak\n  Depends: libc6 (>= 2.15)\n  Depends: erlang-base\nlibc6\n  Depends: libgcc1\n";
        let records = parse_apt_rdepends("S1", raw).unwrap();
        assert_eq!(records.len(), 1);
        match &records[0] {
            DependencyRecord::Software(s) => {
                assert_eq!(s.pgm, "riak");
                assert_eq!(s.hw, "S1");
                assert_eq!(s.deps, vec!["libc6", "erlang-base", "libgcc1"]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn apt_rdepends_empty_is_error() {
        assert!(parse_apt_rdepends("S1", "").is_err());
    }

    #[test]
    fn adapters_feed_depdb() {
        use crate::depdb::DepDb;
        let mut records = parse_nsdminer("S1", "x -> Internet via tor1,core1").unwrap();
        records.extend(parse_lshw("S1", "/0/1 disk SED900").unwrap());
        records.extend(parse_apt_rdepends("S1", "riak\n  Depends: libc6\n").unwrap());
        let db = DepDb::from_records(records);
        assert_eq!(db.network_deps("S1").len(), 1);
        assert_eq!(db.hardware_deps("S1").len(), 1);
        assert_eq!(db.software_deps("S1").len(), 1);
        let set = db.component_set_of("S1");
        assert!(set.contains("tor1"));
        assert!(set.contains("S1-SED900"));
        assert!(set.contains("libc6"));
    }
}
