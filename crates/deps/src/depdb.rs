//! DepDB — the dependency information database the auditing agent queries
//! while building fault graphs (§3, §4.1.1 steps 2–6).

use std::collections::BTreeSet;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};

/// Read-only view of dependency data, as the audit engines consume it.
///
/// The engines only ever look dependencies up *by host* — they never
/// mutate and never assume one contiguous store — so they are written
/// against this trait instead of [`DepDb`] directly. A monolithic
/// [`DepDb`] is one implementation; a sharded snapshot
/// ([`crate::sharded::DbSnapshot`]) composed of many per-shard `Arc`s is
/// another, which is what lets the auditing daemon refresh only the
/// shard an ingest touched.
pub trait DepView: std::fmt::Debug + Send + Sync {
    /// Network routes originating at `host`.
    fn network_deps(&self, host: &str) -> &[NetworkDep];

    /// Hardware components of `host`.
    fn hardware_deps(&self, host: &str) -> &[HardwareDep];

    /// Software records for programs running on `host`.
    fn software_deps(&self, host: &str) -> &[SoftwareDep];

    /// All hosts with at least one record of any kind.
    fn hosts(&self) -> BTreeSet<String>;

    /// Total number of distinct records visible through the view.
    fn record_count(&self) -> usize;

    /// The flat component universe `host` depends on: network devices on
    /// its routes, hardware component ids, programs and their packages.
    /// This is the *component-set* the PIA protocol feeds into P-SOP.
    fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for n in self.network_deps(host) {
            for dev in &n.route {
                set.insert(dev.clone());
            }
        }
        for h in self.hardware_deps(host) {
            set.insert(h.dep.clone());
        }
        for s in self.software_deps(host) {
            set.insert(s.pgm.clone());
            for d in &s.deps {
                set.insert(d.clone());
            }
        }
        set
    }
}

/// A borrowed view of one stored record — what [`DepDb::records_iter`]
/// yields. Records are stored per kind, so a borrowing iterator cannot
/// hand out `&DependencyRecord`; this ref enum lets full-database passes
/// (saving, re-sharding, component extraction) walk every record without
/// first materializing an owned `Vec` of clones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepRecordRef<'a> {
    /// A borrowed network route record.
    Network(&'a NetworkDep),
    /// A borrowed hardware component record.
    Hardware(&'a HardwareDep),
    /// A borrowed software package record.
    Software(&'a SoftwareDep),
}

impl DepRecordRef<'_> {
    /// The host this record belongs to.
    pub fn host(&self) -> &str {
        match self {
            DepRecordRef::Network(n) => &n.src,
            DepRecordRef::Hardware(h) => &h.hw,
            DepRecordRef::Software(s) => &s.hw,
        }
    }

    /// Clones into an owned [`DependencyRecord`].
    pub fn to_owned(self) -> DependencyRecord {
        match self {
            DepRecordRef::Network(n) => DependencyRecord::Network(n.clone()),
            DepRecordRef::Hardware(h) => DependencyRecord::Hardware(h.clone()),
            DepRecordRef::Software(s) => DependencyRecord::Software(s.clone()),
        }
    }
}

/// In-memory dependency store indexed by host.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DepDb {
    network: HashMap<String, Vec<NetworkDep>>,
    hardware: HashMap<String, Vec<HardwareDep>>,
    software: HashMap<String, Vec<SoftwareDep>>,
    record_count: usize,
}

impl DepDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from a record stream, deduplicating exact repeats
    /// (collectors running periodically re-report the same dependencies).
    pub fn from_records(records: impl IntoIterator<Item = DependencyRecord>) -> Self {
        let mut db = Self::new();
        for r in records {
            db.insert(r);
        }
        db
    }

    /// Inserts one record; exact duplicates are ignored. Returns whether the
    /// record was new.
    pub fn insert(&mut self, record: DependencyRecord) -> bool {
        let inserted = match record {
            DependencyRecord::Network(n) => {
                let v = self.network.entry(n.src.clone()).or_default();
                if v.contains(&n) {
                    false
                } else {
                    v.push(n);
                    true
                }
            }
            DependencyRecord::Hardware(h) => {
                let v = self.hardware.entry(h.hw.clone()).or_default();
                if v.contains(&h) {
                    false
                } else {
                    v.push(h);
                    true
                }
            }
            DependencyRecord::Software(s) => {
                let v = self.software.entry(s.hw.clone()).or_default();
                if v.contains(&s) {
                    false
                } else {
                    v.push(s);
                    true
                }
            }
        };
        if inserted {
            self.record_count += 1;
        }
        inserted
    }

    /// Removes one record (exact match). Returns whether it was present.
    ///
    /// Supports *update* flows: an acquisition module that re-measures a
    /// changed route removes the stale record and inserts the new one.
    pub fn remove(&mut self, record: &DependencyRecord) -> bool {
        fn drop_from<T: PartialEq>(
            map: &mut HashMap<String, Vec<T>>,
            key: &str,
            needle: &T,
        ) -> bool {
            let Some(v) = map.get_mut(key) else {
                return false;
            };
            let Some(pos) = v.iter().position(|x| x == needle) else {
                return false;
            };
            v.remove(pos);
            if v.is_empty() {
                map.remove(key);
            }
            true
        }
        let removed = match record {
            DependencyRecord::Network(n) => drop_from(&mut self.network, &n.src, n),
            DependencyRecord::Hardware(h) => drop_from(&mut self.hardware, &h.hw, h),
            DependencyRecord::Software(s) => drop_from(&mut self.software, &s.hw, s),
        };
        if removed {
            self.record_count -= 1;
        }
        removed
    }

    /// Network routes originating at `host`.
    pub fn network_deps(&self, host: &str) -> &[NetworkDep] {
        self.network.get(host).map_or(&[], Vec::as_slice)
    }

    /// Hardware components of `host`.
    pub fn hardware_deps(&self, host: &str) -> &[HardwareDep] {
        self.hardware.get(host).map_or(&[], Vec::as_slice)
    }

    /// Software records for programs running on `host`.
    pub fn software_deps(&self, host: &str) -> &[SoftwareDep] {
        self.software.get(host).map_or(&[], Vec::as_slice)
    }

    /// All hosts that have at least one record of any kind.
    pub fn hosts(&self) -> BTreeSet<String> {
        self.network
            .keys()
            .chain(self.hardware.keys())
            .chain(self.software.keys())
            .cloned()
            .collect()
    }

    /// Total number of distinct records stored.
    pub fn len(&self) -> usize {
        self.record_count
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Walks every stored record without copying it (order: network,
    /// hardware, software, each sorted by host) — the borrowing
    /// counterpart of [`DepDb::all_records`] for full-database passes
    /// like [`DepDb::save`] and shard re-routing, which previously
    /// materialized a full `Vec` of clones on every pass.
    pub fn records_iter(&self) -> impl Iterator<Item = DepRecordRef<'_>> {
        fn sorted_keys<T>(map: &HashMap<String, Vec<T>>) -> Vec<&String> {
            let mut hosts: Vec<_> = map.keys().collect();
            hosts.sort();
            hosts
        }
        let network = sorted_keys(&self.network)
            .into_iter()
            .flat_map(|h| self.network[h].iter().map(DepRecordRef::Network));
        let hardware = sorted_keys(&self.hardware)
            .into_iter()
            .flat_map(|h| self.hardware[h].iter().map(DepRecordRef::Hardware));
        let software = sorted_keys(&self.software)
            .into_iter()
            .flat_map(|h| self.software[h].iter().map(DepRecordRef::Software));
        network.chain(hardware).chain(software)
    }

    /// Flattens back into an owned record list, in [`DepDb::records_iter`]
    /// order — used by tests and callers that need owned records.
    pub fn all_records(&self) -> Vec<DependencyRecord> {
        self.records_iter().map(DepRecordRef::to_owned).collect()
    }

    /// Saves the database to a Table-1-format text file — the portable,
    /// human-inspectable interchange every acquisition module already
    /// speaks. A header comment records provenance.
    ///
    /// The write is crash-safe: contents land in a temp file that is
    /// renamed into place ([`crate::persist::write_atomic`]), so a
    /// killed daemon never leaves a torn Table-1 file behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut text = String::from("# INDaaS DepDB export (Table-1 record format)\n");
        for rec in self.records_iter() {
            text.push_str(&crate::format::serialize_record_ref(rec));
            text.push('\n');
        }
        crate::persist::write_atomic(path, &text)
    }

    /// Loads a database from a Table-1-format text file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; malformed records surface as
    /// `InvalidData`.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = crate::format::parse_records(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Self::from_records(records))
    }

    /// The flat component universe a host depends on: network devices on
    /// its routes, hardware component ids, programs and their packages.
    /// This is the *component-set* the PIA protocol feeds into P-SOP.
    pub fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for n in self.network_deps(host) {
            for dev in &n.route {
                set.insert(dev.clone());
            }
        }
        for h in self.hardware_deps(host) {
            set.insert(h.dep.clone());
        }
        for s in self.software_deps(host) {
            set.insert(s.pgm.clone());
            for d in &s.deps {
                set.insert(d.clone());
            }
        }
        set
    }
}

impl DepView for DepDb {
    fn network_deps(&self, host: &str) -> &[NetworkDep] {
        DepDb::network_deps(self, host)
    }

    fn hardware_deps(&self, host: &str) -> &[HardwareDep] {
        DepDb::hardware_deps(self, host)
    }

    fn software_deps(&self, host: &str) -> &[SoftwareDep] {
        DepDb::software_deps(self, host)
    }

    fn hosts(&self) -> BTreeSet<String> {
        DepDb::hosts(self)
    }

    fn record_count(&self) -> usize {
        self.len()
    }

    fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        DepDb::component_set_of(self, host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_records;

    fn sample_db() -> DepDb {
        let doc = r#"
            <src="S1" dst="Internet" route="ToR1,Core1"/>
            <src="S1" dst="Internet" route="ToR1,Core2"/>
            <src="S2" dst="Internet" route="ToR1,Core1"/>
            <hw="S1" type="CPU" dep="cpu-x5550"/>
            <hw="S2" type="Disk" dep="disk-sed900"/>
            <pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
        "#;
        DepDb::from_records(parse_records(doc).unwrap())
    }

    #[test]
    fn indexes_by_host() {
        let db = sample_db();
        assert_eq!(db.network_deps("S1").len(), 2);
        assert_eq!(db.network_deps("S2").len(), 1);
        assert_eq!(db.hardware_deps("S1").len(), 1);
        assert_eq!(db.software_deps("S1").len(), 1);
        assert!(db.software_deps("S2").is_empty());
        assert!(db.network_deps("S9").is_empty());
    }

    #[test]
    fn deduplicates_repeated_records() {
        let mut db = sample_db();
        let before = db.len();
        let dup = DependencyRecord::Network(NetworkDep {
            src: "S1".into(),
            dst: "Internet".into(),
            route: vec!["ToR1".into(), "Core1".into()],
        });
        assert!(!db.insert(dup));
        assert_eq!(db.len(), before);
    }

    #[test]
    fn hosts_lists_all() {
        let db = sample_db();
        let hosts = db.hosts();
        assert!(hosts.contains("S1"));
        assert!(hosts.contains("S2"));
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn component_set_extraction() {
        let db = sample_db();
        let set = db.component_set_of("S1");
        for expected in [
            "ToR1",
            "Core1",
            "Core2",
            "cpu-x5550",
            "Riak1",
            "libc6",
            "libsvn1",
        ] {
            assert!(set.contains(expected), "missing {expected}");
        }
        assert!(
            !set.contains("disk-sed900"),
            "S2's disk must not leak into S1"
        );
    }

    #[test]
    fn all_records_roundtrip_count() {
        let db = sample_db();
        assert_eq!(db.all_records().len(), db.len());
        let db2 = DepDb::from_records(db.all_records());
        assert_eq!(db2.len(), db.len());
    }

    #[test]
    fn records_iter_matches_all_records_without_cloning() {
        let db = sample_db();
        assert_eq!(db.records_iter().count(), db.len());
        let borrowed: Vec<DependencyRecord> =
            db.records_iter().map(DepRecordRef::to_owned).collect();
        assert_eq!(borrowed, db.all_records());
        for (r, owned) in db.records_iter().zip(&borrowed) {
            assert_eq!(r.host(), owned.host());
        }
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let path = std::env::temp_dir().join(format!("depdb-test-{}", std::process::id()));
        db.save(&path).unwrap();
        let back = DepDb::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.component_set_of("S1"), db.component_set_of("S1"));
    }

    #[test]
    fn load_rejects_malformed_file() {
        let path = std::env::temp_dir().join(format!("depdb-bad-{}", std::process::id()));
        std::fs::write(&path, "<garbage>").unwrap();
        let err = DepDb::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn serde_roundtrip() {
        let db = sample_db();
        let json = serde_json::to_string(&db).unwrap();
        let db2: DepDb = serde_json::from_str(&json).unwrap();
        assert_eq!(db2.len(), db.len());
        assert_eq!(db2.component_set_of("S1"), db.component_set_of("S1"));
    }
}
