//! Host-sharded dependency store with per-shard locks, per-shard
//! epochs, and wait-free snapshot publication.
//!
//! The auditing daemon's write path has evolved in two steps. First the
//! store was sharded by host key so an ingest re-clones only the shards
//! it changed (copy-on-write snapshots, cost proportional to what
//! changed). But every shard still lived under one `RwLock`: ingests to
//! *different* shards serialized, and every audit's `snapshot()` call
//! contended with writers. Cloud dependency data arrives as high-rate,
//! mostly-local updates from many collectors at once (AID,
//! arXiv:2109.04893), so the store is now **concurrent**:
//!
//! * every record routes to `shard_index(record.host(), N)` — all three
//!   record kinds key by host, so a host's records always land together;
//! * each shard is an independent cell: a [`VersionedDepDb`] behind its
//!   **own write mutex**, whose current `Arc<DepDb>` snapshot is
//!   published through an [`ArcSwapCell`] (atomic pointer swap);
//! * mutations pre-route the batch by shard *before* taking any lock,
//!   then lock **only the touched shards**, in ascending index order so
//!   multi-shard batches can never deadlock against each other —
//!   writers contend only when they touch the same shard;
//! * [`ShardedDepDb::snapshot`] takes **no lock at all**: one wait-free
//!   `Arc` load per shard, with the [`EpochVector`] assembled from
//!   per-shard atomics — readers never block, and never observe a shard
//!   snapshot *newer* than its claimed epoch (each cell publishes data
//!   before epoch, and snapshots read epoch before data), so a cached
//!   audit is never pinned to an epoch whose data it did not see;
//! * [`DbSnapshot`] composes the per-shard `Arc`s into one read-only
//!   [`DepView`] the audit engines consume, and can name exactly which
//!   `(shard, epoch)` pairs a given host set reads — the audit cache
//!   keys on those pins, so audits over untouched shards stay cached
//!   across unrelated ingests.
//!
//! Per-shard write counters and a contended-acquisition gauge
//! ([`ShardedDepDb::counters`]) make the parallelism observable through
//! the daemon's `Status` response.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use crate::depdb::{DepDb, DepView};
use crate::format::{parse_records, FormatError};
use crate::record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};
use crate::swap::ArcSwapCell;
use crate::versioned::{Epoch, VersionedDepDb};

/// Deterministic host → shard routing (FNV-1a over the host key).
///
/// Stable across processes and daemon restarts, so cache pins, segment
/// files and status reports mean the same thing on every node with the
/// same shard count.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_index(host: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in host.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The per-shard epochs of a sharded store at one instant.
///
/// Equality is exact: two vectors compare equal iff every shard sits at
/// the same epoch, which is what lets the audit cache short-circuit a
/// purge when nothing can be stale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochVector(Vec<Epoch>);

impl EpochVector {
    /// The epoch of `shard` (0 for out-of-range shards — epoch 0 is the
    /// empty database).
    pub fn get(&self, shard: usize) -> Epoch {
        self.0.get(shard).copied().unwrap_or(0)
    }

    /// Number of shards covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-shard vector.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw per-shard epochs.
    pub fn as_slice(&self) -> &[Epoch] {
        &self.0
    }
}

impl From<Vec<Epoch>> for EpochVector {
    fn from(epochs: Vec<Epoch>) -> Self {
        EpochVector(epochs)
    }
}

/// What one sharded ingest/retract/update batch did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedIngestReport {
    /// Records newly inserted (or removed, for retractions).
    pub changed: usize,
    /// Records ignored: duplicate inserts or absent removals.
    pub ignored: usize,
    /// The store's *global* epoch after the batch — bumps by one per
    /// effective batch, exactly like the monolithic [`VersionedDepDb`],
    /// so wire-protocol epoch semantics are unchanged. Under concurrent
    /// writers this is the value observed right after this batch's own
    /// bump (other batches may bump it further at any time).
    pub epoch: Epoch,
    /// Indices of the shards the batch actually changed (sorted). Empty
    /// for a pure-duplicate batch.
    pub touched: Vec<usize>,
}

/// Write-side observability counters ([`ShardedDepDb::counters`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Effective write batches applied per shard (a batch spanning K
    /// shards counts once on each).
    pub shard_writes: Vec<u64>,
    /// Times a writer found a shard lock already held and had to wait,
    /// summed over all shards — the contention gauge: near zero when
    /// writers stay on disjoint shards.
    pub lock_waits: u64,
}

/// One shard of the store: an independently-locked [`VersionedDepDb`]
/// plus its atomically-published snapshot and observability counters.
#[derive(Debug)]
pub(crate) struct ShardCell {
    /// Guards mutations to this shard only.
    pub(crate) write: Mutex<VersionedDepDb>,
    /// The shard's current immutable snapshot; swapped (never edited in
    /// place) after each effective mutation, so readers holding an old
    /// `Arc` keep a consistent view.
    pub(crate) snap: ArcSwapCell<DepDb>,
    /// Mirror of the shard's epoch, readable without the write lock.
    /// Published *after* the snapshot swap; snapshot readers load it
    /// *before* the snapshot, so a claimed epoch never exceeds the data
    /// it pins.
    pub(crate) epoch: AtomicU64,
    /// Effective write batches applied to this shard.
    pub(crate) writes: AtomicU64,
    /// Contended lock acquisitions on this shard.
    pub(crate) lock_waits: AtomicU64,
    /// Set on every effective mutation, cleared by segment saves — lets
    /// the daemon persist only the shards that changed since the last
    /// save.
    pub(crate) dirty: AtomicBool,
}

impl ShardCell {
    fn new(db: DepDb) -> Self {
        let versioned = VersionedDepDb::from_db(db);
        let epoch = versioned.epoch();
        let snapshot = Arc::new(versioned.db().clone());
        ShardCell {
            write: Mutex::new(versioned),
            snap: ArcSwapCell::new(snapshot),
            epoch: AtomicU64::new(epoch),
            writes: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
        }
    }

    /// Publishes the shard's post-mutation state: snapshot first, epoch
    /// second (the ordering half of the "data never older than its
    /// epoch" invariant). Called with the shard write lock held.
    fn publish(&self, db: &VersionedDepDb) {
        self.snap.store(Arc::new(db.db().clone()));
        self.epoch.store(db.epoch(), Ordering::Release);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Release);
    }
}

/// A dependency store sharded by host key: per-shard write locks,
/// wait-free copy-on-write snapshots.
///
/// All mutation entry points ([`ShardedDepDb::ingest`],
/// [`ShardedDepDb::retract`], [`ShardedDepDb::update`]) take `&self`:
/// the store is safe to share across threads directly (no external lock
/// needed), and writers to disjoint shards proceed in parallel.
#[derive(Debug)]
pub struct ShardedDepDb {
    pub(crate) shards: Vec<ShardCell>,
    /// Global batch counter matching [`VersionedDepDb`] semantics.
    pub(crate) epoch: AtomicU64,
    /// Serializes whole-store segment saves (`crate::persist`): two
    /// concurrent savers — the daemon's collector tick racing its
    /// shutdown save — would otherwise claim dirty flags and rename
    /// segment files in an interleaved order that can publish an older
    /// snapshot over a newer one.
    pub(crate) persist: Mutex<()>,
}

impl ShardedDepDb {
    /// An empty store with `shards` shards (clamped to at least 1), all
    /// at epoch 0.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedDepDb {
            shards: (0..shards).map(|_| ShardCell::new(DepDb::new())).collect(),
            epoch: AtomicU64::new(0),
            persist: Mutex::new(()),
        }
    }

    /// Routes an existing database's records into `shards` shards. A
    /// non-empty seed starts at global epoch 1 (and every non-empty
    /// shard at shard epoch 1), matching [`VersionedDepDb::from_db`].
    pub fn from_db(db: DepDb, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut routed: Vec<DepDb> = (0..shards).map(|_| DepDb::new()).collect();
        for rec in db.records_iter() {
            routed[shard_index(rec.host(), shards)].insert(rec.to_owned());
        }
        Self::from_routed(routed, Epoch::from(!db.is_empty()))
    }

    /// Assembles a store from already-routed per-shard databases (the
    /// segment loader's entry point — it has per-shard record sets in
    /// hand and must not pay a second routing pass).
    pub(crate) fn from_routed(routed: Vec<DepDb>, epoch: Epoch) -> Self {
        ShardedDepDb {
            shards: routed.into_iter().map(ShardCell::new).collect(),
            epoch: AtomicU64::new(epoch),
            persist: Mutex::new(()),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `host`'s records route to.
    pub fn shard_of(&self, host: &str) -> usize {
        shard_index(host, self.shards.len())
    }

    /// The global epoch: bumps by one per effective batch.
    pub fn epoch(&self) -> Epoch {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The per-shard epochs, read from the published atomics — no lock.
    pub fn epochs(&self) -> EpochVector {
        EpochVector(
            self.shards
                .iter()
                .map(|c| c.epoch.load(Ordering::Acquire))
                .collect(),
        )
    }

    /// Per-shard write counters and the lock-contention gauge.
    pub fn counters(&self) -> ShardCounters {
        ShardCounters {
            shard_writes: self
                .shards
                .iter()
                .map(|c| c.writes.load(Ordering::Relaxed))
                .collect(),
            lock_waits: self
                .shards
                .iter()
                .map(|c| c.lock_waits.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Distinct records in shard `shard` (via its published snapshot).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].snap.load().len()
    }

    /// Total distinct records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|c| c.snap.load().len()).sum()
    }

    /// True if no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|c| c.snap.load().is_empty())
    }

    /// A copy-on-write snapshot of the whole store: one wait-free `Arc`
    /// load per shard, no lock, no record copied. Cheap enough to take
    /// per request, and never delayed by concurrent writers.
    ///
    /// Each shard's epoch is read *before* its data, and writers publish
    /// data *before* epoch — so a pinned `(shard, epoch)` pair never
    /// claims an epoch newer than the data backing it (the safe
    /// direction for the audit cache: at worst a result computed on
    /// fresher data is pinned to an already-stale epoch and simply never
    /// served).
    pub fn snapshot(&self) -> DbSnapshot {
        let mut epochs = Vec::with_capacity(self.shards.len());
        let mut shards = Vec::with_capacity(self.shards.len());
        for cell in &self.shards {
            epochs.push(cell.epoch.load(Ordering::Acquire));
            shards.push(cell.snap.load());
        }
        DbSnapshot {
            shards,
            epochs: EpochVector(epochs),
        }
    }

    /// Locks one shard for writing, counting contended acquisitions.
    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, VersionedDepDb> {
        let cell = &self.shards[shard];
        match cell.write.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                cell.lock_waits.fetch_add(1, Ordering::Relaxed);
                cell.write.lock().expect("shard lock poisoned")
            }
            Err(TryLockError::Poisoned(e)) => panic!("shard lock poisoned: {e}"),
        }
    }

    /// Groups an owned record batch by destination shard, preserving
    /// order. Runs *before* any lock is taken.
    fn route(
        &self,
        records: impl IntoIterator<Item = DependencyRecord>,
    ) -> Vec<Vec<DependencyRecord>> {
        let mut routed: Vec<Vec<DependencyRecord>> = vec![Vec::new(); self.shards.len()];
        for r in records {
            routed[shard_index(r.host(), self.shards.len())].push(r);
        }
        routed
    }

    /// Groups a borrowed record batch by destination shard — retract and
    /// update only need references, so routing must not clone a large
    /// batch on the daemon's write path.
    fn route_refs<'a>(
        &self,
        records: impl IntoIterator<Item = &'a DependencyRecord>,
    ) -> Vec<Vec<&'a DependencyRecord>> {
        let mut routed: Vec<Vec<&'a DependencyRecord>> = vec![Vec::new(); self.shards.len()];
        for r in records {
            routed[shard_index(r.host(), self.shards.len())].push(r);
        }
        routed
    }

    /// The shared mutation driver: locks the hit shards in ascending
    /// index order (the deadlock-freedom discipline — two multi-shard
    /// batches always acquire their common shards in the same order),
    /// applies each shard's slice, publishes changed shards (snapshot
    /// swap + epoch), and bumps the global epoch once if anything
    /// changed. Locks are held only across apply + publish; routing
    /// happened before any lock.
    fn apply_routed<F>(&self, hit: Vec<usize>, mut apply: F) -> ShardedIngestReport
    where
        F: FnMut(usize, &mut VersionedDepDb) -> crate::versioned::IngestReport,
    {
        debug_assert!(hit.windows(2).all(|w| w[0] < w[1]), "ascending lock order");
        let mut report = ShardedIngestReport::default();
        let mut guards: Vec<(usize, MutexGuard<'_, VersionedDepDb>)> =
            hit.into_iter().map(|s| (s, self.lock_shard(s))).collect();
        for (s, guard) in &mut guards {
            let shard_report = apply(*s, guard);
            report.changed += shard_report.changed;
            report.ignored += shard_report.ignored;
            if shard_report.changed > 0 {
                self.shards[*s].publish(guard);
                report.touched.push(*s);
            }
        }
        report.epoch = if report.touched.is_empty() {
            self.epoch.load(Ordering::SeqCst)
        } else {
            self.epoch.fetch_add(1, Ordering::SeqCst) + 1
        };
        report
    }

    /// Ingests a record batch. Only the shards the batch routes to are
    /// locked; only shards that gained a record bump their epoch and
    /// publish a fresh snapshot. A pure-duplicate batch touches nothing.
    pub fn ingest(
        &self,
        records: impl IntoIterator<Item = DependencyRecord>,
    ) -> ShardedIngestReport {
        let mut routed = self.route(records);
        let hit: Vec<usize> = (0..routed.len())
            .filter(|&s| !routed[s].is_empty())
            .collect();
        self.apply_routed(hit, |s, db| db.ingest(std::mem::take(&mut routed[s])))
    }

    /// Parses Table-1 text and ingests it as one batch.
    ///
    /// # Errors
    ///
    /// Returns the parse error without touching any shard or epoch — a
    /// malformed batch is rejected atomically.
    pub fn ingest_text(&self, text: &str) -> Result<ShardedIngestReport, FormatError> {
        let records = parse_records(text)?;
        Ok(self.ingest(records))
    }

    /// Retracts records (exact match), locking only their hosts' shards.
    pub fn retract(&self, records: &[DependencyRecord]) -> ShardedIngestReport {
        let mut routed = self.route_refs(records);
        let hit: Vec<usize> = (0..routed.len())
            .filter(|&s| !routed[s].is_empty())
            .collect();
        self.apply_routed(hit, |s, db| db.retract_refs(std::mem::take(&mut routed[s])))
    }

    /// Atomic update: retract `stale` and ingest `fresh` with one global
    /// epoch bump if the batch changed anything net. Each shard applies
    /// its slice of the update with [`VersionedDepDb::update`] no-op
    /// semantics, so a collector re-measuring an unchanged world bumps
    /// nothing anywhere. All shards the update spans are held for the
    /// whole batch (acquired in ascending order), so no concurrent
    /// writer observes the retract without the matching ingest on any
    /// single shard.
    pub fn update(
        &self,
        stale: &[DependencyRecord],
        fresh: impl IntoIterator<Item = DependencyRecord>,
    ) -> ShardedIngestReport {
        let mut stale_routed = self.route_refs(stale);
        let mut fresh_routed = self.route(fresh);
        let hit: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !stale_routed[s].is_empty() || !fresh_routed[s].is_empty())
            .collect();
        self.apply_routed(hit, |s, db| {
            db.update_refs(
                std::mem::take(&mut stale_routed[s]),
                std::mem::take(&mut fresh_routed[s]),
            )
        })
    }
}

/// An immutable, epoch-pinned view over all shards of a [`ShardedDepDb`]
/// — what audit jobs read.
///
/// Cloning is N pointer bumps. A snapshot is per-shard consistent: each
/// shard's `Arc` is an immutable database later ingests can never mutate
/// (the store swaps in fresh snapshots instead of editing in place), and
/// each pinned epoch is never newer than its shard's data.
#[derive(Clone, Debug)]
pub struct DbSnapshot {
    shards: Vec<Arc<DepDb>>,
    epochs: EpochVector,
}

impl DbSnapshot {
    /// Wraps one monolithic database as a single-shard snapshot — the
    /// adapter for non-sharded callers (tests, one-shot CLI paths).
    pub fn single(db: Arc<DepDb>, epoch: Epoch) -> Self {
        DbSnapshot {
            shards: vec![db],
            epochs: EpochVector(vec![epoch]),
        }
    }

    /// Number of shards composed.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The epoch vector pinned at snapshot time.
    pub fn epochs(&self) -> &EpochVector {
        &self.epochs
    }

    /// The shard `host` routes to.
    pub fn shard_of(&self, host: &str) -> usize {
        shard_index(host, self.shards.len())
    }

    /// The snapshot of shard `shard`.
    pub fn shard(&self, shard: usize) -> &Arc<DepDb> {
        &self.shards[shard]
    }

    fn shard_for(&self, host: &str) -> &DepDb {
        &self.shards[self.shard_of(host)]
    }

    /// The sorted, deduplicated `(shard, epoch)` pairs a query over
    /// `hosts` reads — the audit cache keys on exactly these pins, so a
    /// cached audit stays valid across ingests that only touch *other*
    /// shards.
    pub fn pins_for_hosts<'a>(
        &self,
        hosts: impl IntoIterator<Item = &'a str>,
    ) -> Vec<(u32, Epoch)> {
        let mut shards: Vec<usize> = hosts.into_iter().map(|h| self.shard_of(h)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
            .into_iter()
            .map(|s| (s as u32, self.epochs.get(s)))
            .collect()
    }
}

impl DepView for DbSnapshot {
    fn network_deps(&self, host: &str) -> &[NetworkDep] {
        self.shard_for(host).network_deps(host)
    }

    fn hardware_deps(&self, host: &str) -> &[HardwareDep] {
        self.shard_for(host).hardware_deps(host)
    }

    fn software_deps(&self, host: &str) -> &[SoftwareDep] {
        self.shard_for(host).software_deps(host)
    }

    fn hosts(&self) -> BTreeSet<String> {
        self.shards.iter().flat_map(|s| s.hosts()).collect()
    }

    fn record_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        self.shard_for(host).component_set_of(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_record;

    fn rec(line: &str) -> DependencyRecord {
        parse_record(line).unwrap()
    }

    fn host_record(host: &str, dep: &str) -> DependencyRecord {
        rec(&format!("<hw=\"{host}\" type=\"CPU\" dep=\"{dep}\"/>"))
    }

    /// Two hosts guaranteed to live in different shards of an
    /// `n`-sharded store (panics if `n == 1`).
    fn split_hosts(n: usize) -> (String, String) {
        let a = "H0".to_string();
        for i in 1..10_000 {
            let b = format!("H{i}");
            if shard_index(&b, n) != shard_index(&a, n) {
                return (a, b);
            }
        }
        panic!("no host pair split across {n} shards");
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1, 2, 8, 64] {
            for host in ["S1", "S2", "a-very-long-host-name", ""] {
                let s = shard_index(host, n);
                assert!(s < n);
                assert_eq!(s, shard_index(host, n), "routing must be stable");
            }
        }
    }

    #[test]
    fn ingest_touches_only_the_hosts_shards() {
        let db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        let report = db.ingest([host_record(&a, "cpu-1")]);
        assert_eq!(report.changed, 1);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.touched, vec![db.shard_of(&a)]);
        let epochs = db.epochs();
        assert_eq!(epochs.get(db.shard_of(&a)), 1);
        assert_eq!(epochs.get(db.shard_of(&b)), 0);
    }

    #[test]
    fn untouched_shards_share_their_snapshot_arc() {
        let db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        db.ingest([host_record(&a, "cpu-1"), host_record(&b, "cpu-2")]);
        let before = db.snapshot();
        // Ingest into b's shard only: a's snapshot Arc must be *shared*,
        // not re-cloned — that sharing is the whole point of sharding.
        db.ingest([host_record(&b, "cpu-3")]);
        let after = db.snapshot();
        let (sa, sb) = (db.shard_of(&a), db.shard_of(&b));
        assert!(
            Arc::ptr_eq(before.shard(sa), after.shard(sa)),
            "untouched shard must keep sharing its snapshot"
        );
        assert!(
            !Arc::ptr_eq(before.shard(sb), after.shard(sb)),
            "dirty shard must get a fresh snapshot"
        );
    }

    #[test]
    fn duplicate_batch_refreshes_nothing() {
        let db = ShardedDepDb::new(4);
        db.ingest([host_record("S1", "cpu-1")]);
        let before = db.snapshot();
        let report = db.ingest([host_record("S1", "cpu-1")]);
        assert_eq!((report.changed, report.ignored), (0, 1));
        assert!(report.touched.is_empty());
        assert_eq!(db.epoch(), 1, "duplicate batch must not bump the epoch");
        let after = db.snapshot();
        for s in 0..db.num_shards() {
            assert!(Arc::ptr_eq(before.shard(s), after.shard(s)));
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingests() {
        let db = ShardedDepDb::new(4);
        db.ingest([host_record("S1", "cpu-1")]);
        let snap = db.snapshot();
        let pinned = snap.epochs().clone();
        db.ingest([host_record("S1", "cpu-2"), host_record("S2", "disk-1")]);
        assert_eq!(
            snap.record_count(),
            1,
            "snapshot must not see later ingests"
        );
        assert_eq!(
            snap.epochs(),
            &pinned,
            "snapshot pins the epoch vector it was taken at"
        );
        assert!(db.epochs() != pinned, "the live store moved on");
        assert_eq!(db.snapshot().record_count(), 3);
    }

    #[test]
    fn sharded_matches_monolithic_semantics() {
        let records = vec![
            rec(r#"<src="S1" dst="Internet" route="tor1,core1"/>"#),
            rec(r#"<src="S2" dst="Internet" route="tor1,core2"/>"#),
            host_record("S1", "cpu-1"),
            rec(r#"<pgm="Riak1" hw="S3" dep="libc6,libsvn1"/>"#),
        ];
        let mono = DepDb::from_records(records.clone());
        let sharded = ShardedDepDb::new(8);
        let report = sharded.ingest(records.clone());
        assert_eq!(report.changed, mono.len());
        assert_eq!(sharded.len(), mono.len());
        let snap = sharded.snapshot();
        assert_eq!(DepView::hosts(&snap), DepDb::hosts(&mono));
        for host in mono.hosts() {
            assert_eq!(
                DepView::component_set_of(&snap, &host),
                mono.component_set_of(&host)
            );
            assert_eq!(
                DepView::network_deps(&snap, &host),
                mono.network_deps(&host)
            );
        }
        // Retract parity.
        let r = sharded.retract(&records);
        assert_eq!(r.changed, mono.len());
        assert!(sharded.is_empty());
    }

    #[test]
    fn update_bumps_global_epoch_once() {
        let db = ShardedDepDb::new(4);
        let stale = host_record("S1", "cpu-old");
        db.ingest([stale.clone(), host_record("S2", "disk-1")]);
        assert_eq!(db.epoch(), 1);
        let report = db.update(std::slice::from_ref(&stale), [host_record("S1", "cpu-new")]);
        assert_eq!(report.changed, 2);
        assert_eq!(db.epoch(), 2, "one batch = one global bump");
        // Self-update is a net no-op: no bump anywhere.
        let again = host_record("S1", "cpu-new");
        let report = db.update(std::slice::from_ref(&again), [again.clone()]);
        assert_eq!(report.changed, 0);
        assert_eq!(db.epoch(), 2);
    }

    #[test]
    fn from_db_reroutes_and_seeds_epochs() {
        let mono = DepDb::from_records(vec![
            host_record("S1", "cpu-1"),
            host_record("S2", "cpu-2"),
            rec(r#"<src="S1" dst="Internet" route="tor1"/>"#),
        ]);
        let sharded = ShardedDepDb::from_db(mono.clone(), 8);
        assert_eq!(sharded.epoch(), 1, "non-empty seed starts at epoch 1");
        assert_eq!(sharded.len(), mono.len());
        let snap = sharded.snapshot();
        for host in mono.hosts() {
            assert_eq!(
                DepView::component_set_of(&snap, &host),
                mono.component_set_of(&host)
            );
        }
        assert_eq!(ShardedDepDb::from_db(DepDb::new(), 4).epoch(), 0);
    }

    #[test]
    fn pins_cover_exactly_the_read_shards() {
        let db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        db.ingest([host_record(&a, "cpu-1"), host_record(&b, "cpu-2")]);
        let snap = db.snapshot();
        let pins = snap.pins_for_hosts([a.as_str(), b.as_str(), a.as_str()]);
        let mut expect = vec![(snap.shard_of(&a) as u32, 1), (snap.shard_of(&b) as u32, 1)];
        expect.sort_unstable();
        assert_eq!(pins, expect, "pins are sorted and deduplicated");
    }

    #[test]
    fn single_snapshot_wraps_a_monolithic_db() {
        let db = Arc::new(DepDb::from_records(vec![host_record("S1", "cpu-1")]));
        let snap = DbSnapshot::single(Arc::clone(&db), 3);
        assert_eq!(snap.num_shards(), 1);
        assert_eq!(snap.record_count(), 1);
        assert_eq!(snap.pins_for_hosts(["S1", "S2"]), vec![(0, 3)]);
    }

    #[test]
    fn writes_and_lock_waits_are_counted() {
        let db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        db.ingest([host_record(&a, "cpu-1")]);
        db.ingest([host_record(&a, "cpu-2"), host_record(&b, "cpu-1")]);
        db.ingest([host_record(&a, "cpu-2")]); // pure duplicate: no write
        let counters = db.counters();
        assert_eq!(counters.shard_writes[db.shard_of(&a)], 2);
        assert_eq!(counters.shard_writes[db.shard_of(&b)], 1);
        assert_eq!(
            counters.shard_writes.iter().sum::<u64>(),
            3,
            "only effective batches count as writes"
        );
        assert_eq!(counters.lock_waits, 0, "uncontended writes never wait");
    }

    /// Writers on disjoint shards running concurrently land exactly the
    /// records and per-shard epochs a serial replay would (the e2e-sized
    /// version of this property lives in tests/properties.rs).
    #[test]
    fn concurrent_disjoint_writers_match_serial() {
        let shards = 4;
        let concurrent = ShardedDepDb::new(shards);
        let serial = ShardedDepDb::new(shards);
        // One host pool per shard.
        let mut pools: Vec<Vec<String>> = vec![Vec::new(); shards];
        for i in 0..10_000 {
            let host = format!("H{i}");
            let s = shard_index(&host, shards);
            if pools[s].len() < 2 {
                pools[s].push(host);
            }
            if pools.iter().all(|p| p.len() == 2) {
                break;
            }
        }
        std::thread::scope(|scope| {
            for pool in &pools {
                let db = &concurrent;
                scope.spawn(move || {
                    for batch in 0..5 {
                        let records: Vec<DependencyRecord> = pool
                            .iter()
                            .map(|h| host_record(h, &format!("dep-{batch}")))
                            .collect();
                        db.ingest(records);
                    }
                });
            }
        });
        for pool in &pools {
            for batch in 0..5 {
                let records: Vec<DependencyRecord> = pool
                    .iter()
                    .map(|h| host_record(h, &format!("dep-{batch}")))
                    .collect();
                serial.ingest(records);
            }
        }
        assert_eq!(concurrent.epochs(), serial.epochs());
        assert_eq!(concurrent.epoch(), serial.epoch());
        let (csnap, ssnap) = (concurrent.snapshot(), serial.snapshot());
        assert_eq!(DepView::hosts(&csnap), DepView::hosts(&ssnap));
        for host in DepView::hosts(&ssnap) {
            assert_eq!(csnap.component_set_of(&host), ssnap.component_set_of(&host));
        }
    }
}
