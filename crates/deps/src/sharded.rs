//! Host-sharded dependency store with per-shard epochs.
//!
//! The auditing daemon's hottest write path used to snapshot the *whole*
//! database (`Arc::new(db.clone())`) on every effective ingest and
//! invalidate every cached audit on every epoch bump — at millions of
//! records the copy dominates ingest latency, and one host's update
//! evicts every tenant's cached report. Cloud dependency data arrives as
//! high-rate, mostly-local updates (AID, arXiv:2109.04893), so the store
//! is sharded **by host key**:
//!
//! * every record routes to `shard_index(record.host(), N)` — all three
//!   record kinds key by host, so a host's records always land together;
//! * each shard is an independent [`VersionedDepDb`] with its own epoch,
//!   collected into an [`EpochVector`];
//! * snapshots are copy-on-write: the store keeps one `Arc<DepDb>` per
//!   shard and re-clones **only the shards a batch actually changed** —
//!   untouched shards keep sharing their `Arc`, so ingest cost is
//!   proportional to what changed, not to database size;
//! * [`DbSnapshot`] composes the per-shard `Arc`s into one read-only
//!   [`DepView`] the audit engines consume, and can name exactly which
//!   `(shard, epoch)` pairs a given host set reads — the audit cache
//!   keys on those pins, so audits over untouched shards stay cached
//!   across unrelated ingests.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::depdb::{DepDb, DepView};
use crate::format::{parse_records, FormatError};
use crate::record::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};
use crate::versioned::{Epoch, VersionedDepDb};

/// Deterministic host → shard routing (FNV-1a over the host key).
///
/// Stable across processes and daemon restarts, so cache pins and
/// status reports mean the same thing on every node with the same
/// shard count.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_index(host: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in host.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The per-shard epochs of a sharded store at one instant.
///
/// Equality is exact: two vectors compare equal iff every shard sits at
/// the same epoch, which is what lets the audit cache short-circuit a
/// purge when nothing can be stale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochVector(Vec<Epoch>);

impl EpochVector {
    /// The epoch of `shard` (0 for out-of-range shards — epoch 0 is the
    /// empty database).
    pub fn get(&self, shard: usize) -> Epoch {
        self.0.get(shard).copied().unwrap_or(0)
    }

    /// Number of shards covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-shard vector.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw per-shard epochs.
    pub fn as_slice(&self) -> &[Epoch] {
        &self.0
    }
}

impl From<Vec<Epoch>> for EpochVector {
    fn from(epochs: Vec<Epoch>) -> Self {
        EpochVector(epochs)
    }
}

/// What one sharded ingest/retract/update batch did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedIngestReport {
    /// Records newly inserted (or removed, for retractions).
    pub changed: usize,
    /// Records ignored: duplicate inserts or absent removals.
    pub ignored: usize,
    /// The store's *global* epoch after the batch — bumps by one per
    /// effective batch, exactly like the monolithic [`VersionedDepDb`],
    /// so wire-protocol epoch semantics are unchanged.
    pub epoch: Epoch,
    /// Indices of the shards the batch actually changed (sorted). Empty
    /// for a pure-duplicate batch.
    pub touched: Vec<usize>,
}

/// A dependency store sharded by host key, with copy-on-write per-shard
/// snapshots.
///
/// All mutation entry points ([`ShardedDepDb::ingest`],
/// [`ShardedDepDb::retract`], [`ShardedDepDb::update`]) route records to
/// their host's shard, apply them shard-locally, and refresh only the
/// snapshots of shards whose epoch moved.
#[derive(Clone, Debug)]
pub struct ShardedDepDb {
    shards: Vec<VersionedDepDb>,
    /// One immutable snapshot per shard; re-cloned only when its shard's
    /// epoch moves, shared (`Arc`) otherwise.
    snapshots: Vec<Arc<DepDb>>,
    /// Global batch counter matching [`VersionedDepDb`] semantics.
    epoch: Epoch,
}

impl ShardedDepDb {
    /// An empty store with `shards` shards (clamped to at least 1), all
    /// at epoch 0.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedDepDb {
            shards: (0..shards).map(|_| VersionedDepDb::new()).collect(),
            snapshots: (0..shards).map(|_| Arc::new(DepDb::new())).collect(),
            epoch: 0,
        }
    }

    /// Routes an existing database's records into `shards` shards. A
    /// non-empty seed starts at global epoch 1 (and every non-empty
    /// shard at shard epoch 1), matching [`VersionedDepDb::from_db`].
    pub fn from_db(db: DepDb, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut routed: Vec<DepDb> = (0..shards).map(|_| DepDb::new()).collect();
        for rec in db.records_iter() {
            routed[shard_index(rec.host(), shards)].insert(rec.to_owned());
        }
        let epoch = Epoch::from(!db.is_empty());
        let shards: Vec<VersionedDepDb> = routed.into_iter().map(VersionedDepDb::from_db).collect();
        let snapshots = shards.iter().map(|s| Arc::new(s.db().clone())).collect();
        ShardedDepDb {
            shards,
            snapshots,
            epoch,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `host`'s records route to.
    pub fn shard_of(&self, host: &str) -> usize {
        shard_index(host, self.shards.len())
    }

    /// The global epoch: bumps by one per effective batch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The per-shard epochs.
    pub fn epochs(&self) -> EpochVector {
        EpochVector(self.shards.iter().map(VersionedDepDb::epoch).collect())
    }

    /// Distinct records in shard `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].db().len()
    }

    /// Total distinct records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.db().len()).sum()
    }

    /// True if no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.db().is_empty())
    }

    /// A copy-on-write snapshot of the whole store: N `Arc` clones, no
    /// record is copied. Cheap enough to take per request.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            shards: self.snapshots.clone(),
            epochs: self.epochs(),
        }
    }

    /// Groups an owned record batch by destination shard, preserving
    /// order.
    fn route(
        &self,
        records: impl IntoIterator<Item = DependencyRecord>,
    ) -> Vec<Vec<DependencyRecord>> {
        let mut routed: Vec<Vec<DependencyRecord>> = vec![Vec::new(); self.shards.len()];
        for r in records {
            routed[shard_index(r.host(), self.shards.len())].push(r);
        }
        routed
    }

    /// Groups a borrowed record batch by destination shard — retract and
    /// update only need references, so routing must not clone a large
    /// batch on the daemon's write path.
    fn route_refs<'a>(
        &self,
        records: impl IntoIterator<Item = &'a DependencyRecord>,
    ) -> Vec<Vec<&'a DependencyRecord>> {
        let mut routed: Vec<Vec<&'a DependencyRecord>> = vec![Vec::new(); self.shards.len()];
        for r in records {
            routed[shard_index(r.host(), self.shards.len())].push(r);
        }
        routed
    }

    /// Re-clones the snapshots of exactly the shards in `touched` and
    /// advances the global epoch if anything changed — the single place
    /// the copy-on-write invariant is maintained.
    fn commit(&mut self, report: &mut ShardedIngestReport) {
        for &s in &report.touched {
            self.snapshots[s] = Arc::new(self.shards[s].db().clone());
        }
        if !report.touched.is_empty() {
            self.epoch += 1;
        }
        report.epoch = self.epoch;
    }

    /// Ingests a record batch, shard-locally. Only shards that gained a
    /// record bump their epoch and re-clone their snapshot; a
    /// pure-duplicate batch touches nothing.
    pub fn ingest(
        &mut self,
        records: impl IntoIterator<Item = DependencyRecord>,
    ) -> ShardedIngestReport {
        let mut report = ShardedIngestReport::default();
        for (s, batch) in self.route(records).into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard_report = self.shards[s].ingest(batch);
            report.changed += shard_report.changed;
            report.ignored += shard_report.ignored;
            if shard_report.changed > 0 {
                report.touched.push(s);
            }
        }
        self.commit(&mut report);
        report
    }

    /// Parses Table-1 text and ingests it as one batch.
    ///
    /// # Errors
    ///
    /// Returns the parse error without touching any shard or epoch — a
    /// malformed batch is rejected atomically.
    pub fn ingest_text(&mut self, text: &str) -> Result<ShardedIngestReport, FormatError> {
        let records = parse_records(text)?;
        Ok(self.ingest(records))
    }

    /// Retracts records (exact match), shard-locally.
    pub fn retract(&mut self, records: &[DependencyRecord]) -> ShardedIngestReport {
        let mut report = ShardedIngestReport::default();
        for (s, batch) in self.route_refs(records).into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard_report = self.shards[s].retract_refs(batch);
            report.changed += shard_report.changed;
            report.ignored += shard_report.ignored;
            if shard_report.changed > 0 {
                report.touched.push(s);
            }
        }
        self.commit(&mut report);
        report
    }

    /// Atomic update: retract `stale` and ingest `fresh` with one global
    /// epoch bump if the batch changed anything net. Each shard applies
    /// its slice of the update with [`VersionedDepDb::update`] no-op
    /// semantics, so a collector re-measuring an unchanged world bumps
    /// nothing anywhere.
    pub fn update(
        &mut self,
        stale: &[DependencyRecord],
        fresh: impl IntoIterator<Item = DependencyRecord>,
    ) -> ShardedIngestReport {
        let stale_routed = self.route_refs(stale);
        let fresh_routed = self.route(fresh);
        let mut report = ShardedIngestReport::default();
        for (s, (stale_s, fresh_s)) in stale_routed.into_iter().zip(fresh_routed).enumerate() {
            if stale_s.is_empty() && fresh_s.is_empty() {
                continue;
            }
            let shard_report = self.shards[s].update_refs(stale_s, fresh_s);
            report.changed += shard_report.changed;
            report.ignored += shard_report.ignored;
            if shard_report.changed > 0 {
                report.touched.push(s);
            }
        }
        self.commit(&mut report);
        report
    }
}

impl DepView for ShardedDepDb {
    fn network_deps(&self, host: &str) -> &[NetworkDep] {
        self.shards[self.shard_of(host)].db().network_deps(host)
    }

    fn hardware_deps(&self, host: &str) -> &[HardwareDep] {
        self.shards[self.shard_of(host)].db().hardware_deps(host)
    }

    fn software_deps(&self, host: &str) -> &[SoftwareDep] {
        self.shards[self.shard_of(host)].db().software_deps(host)
    }

    fn hosts(&self) -> BTreeSet<String> {
        self.shards.iter().flat_map(|s| s.db().hosts()).collect()
    }

    fn record_count(&self) -> usize {
        self.len()
    }

    fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        self.shards[self.shard_of(host)].db().component_set_of(host)
    }
}

/// An immutable, epoch-pinned view over all shards of a [`ShardedDepDb`]
/// — what audit jobs read.
///
/// Cloning is N pointer bumps. A snapshot is consistent: it pins the
/// epoch vector current when it was taken, and later ingests can never
/// mutate the `DepDb`s it references (the store re-clones dirty shards
/// instead of editing them in place).
#[derive(Clone, Debug)]
pub struct DbSnapshot {
    shards: Vec<Arc<DepDb>>,
    epochs: EpochVector,
}

impl DbSnapshot {
    /// Wraps one monolithic database as a single-shard snapshot — the
    /// adapter for non-sharded callers (tests, one-shot CLI paths).
    pub fn single(db: Arc<DepDb>, epoch: Epoch) -> Self {
        DbSnapshot {
            shards: vec![db],
            epochs: EpochVector(vec![epoch]),
        }
    }

    /// Number of shards composed.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The epoch vector pinned at snapshot time.
    pub fn epochs(&self) -> &EpochVector {
        &self.epochs
    }

    /// The shard `host` routes to.
    pub fn shard_of(&self, host: &str) -> usize {
        shard_index(host, self.shards.len())
    }

    /// The snapshot of shard `shard`.
    pub fn shard(&self, shard: usize) -> &Arc<DepDb> {
        &self.shards[shard]
    }

    fn shard_for(&self, host: &str) -> &DepDb {
        &self.shards[self.shard_of(host)]
    }

    /// The sorted, deduplicated `(shard, epoch)` pairs a query over
    /// `hosts` reads — the audit cache keys on exactly these pins, so a
    /// cached audit stays valid across ingests that only touch *other*
    /// shards.
    pub fn pins_for_hosts<'a>(
        &self,
        hosts: impl IntoIterator<Item = &'a str>,
    ) -> Vec<(u32, Epoch)> {
        let mut shards: Vec<usize> = hosts.into_iter().map(|h| self.shard_of(h)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
            .into_iter()
            .map(|s| (s as u32, self.epochs.get(s)))
            .collect()
    }
}

impl DepView for DbSnapshot {
    fn network_deps(&self, host: &str) -> &[NetworkDep] {
        self.shard_for(host).network_deps(host)
    }

    fn hardware_deps(&self, host: &str) -> &[HardwareDep] {
        self.shard_for(host).hardware_deps(host)
    }

    fn software_deps(&self, host: &str) -> &[SoftwareDep] {
        self.shard_for(host).software_deps(host)
    }

    fn hosts(&self) -> BTreeSet<String> {
        self.shards.iter().flat_map(|s| s.hosts()).collect()
    }

    fn record_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn component_set_of(&self, host: &str) -> BTreeSet<String> {
        self.shard_for(host).component_set_of(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_record;

    fn rec(line: &str) -> DependencyRecord {
        parse_record(line).unwrap()
    }

    fn host_record(host: &str, dep: &str) -> DependencyRecord {
        rec(&format!("<hw=\"{host}\" type=\"CPU\" dep=\"{dep}\"/>"))
    }

    /// Two hosts guaranteed to live in different shards of an
    /// `n`-sharded store (panics if `n == 1`).
    fn split_hosts(n: usize) -> (String, String) {
        let a = "H0".to_string();
        for i in 1..10_000 {
            let b = format!("H{i}");
            if shard_index(&b, n) != shard_index(&a, n) {
                return (a, b);
            }
        }
        panic!("no host pair split across {n} shards");
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1, 2, 8, 64] {
            for host in ["S1", "S2", "a-very-long-host-name", ""] {
                let s = shard_index(host, n);
                assert!(s < n);
                assert_eq!(s, shard_index(host, n), "routing must be stable");
            }
        }
    }

    #[test]
    fn ingest_touches_only_the_hosts_shards() {
        let mut db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        let report = db.ingest([host_record(&a, "cpu-1")]);
        assert_eq!(report.changed, 1);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.touched, vec![db.shard_of(&a)]);
        let epochs = db.epochs();
        assert_eq!(epochs.get(db.shard_of(&a)), 1);
        assert_eq!(epochs.get(db.shard_of(&b)), 0);
    }

    #[test]
    fn untouched_shards_share_their_snapshot_arc() {
        let mut db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        db.ingest([host_record(&a, "cpu-1"), host_record(&b, "cpu-2")]);
        let before = db.snapshot();
        // Ingest into b's shard only: a's snapshot Arc must be *shared*,
        // not re-cloned — that sharing is the whole point of sharding.
        db.ingest([host_record(&b, "cpu-3")]);
        let after = db.snapshot();
        let (sa, sb) = (db.shard_of(&a), db.shard_of(&b));
        assert!(
            Arc::ptr_eq(before.shard(sa), after.shard(sa)),
            "untouched shard must keep sharing its snapshot"
        );
        assert!(
            !Arc::ptr_eq(before.shard(sb), after.shard(sb)),
            "dirty shard must get a fresh snapshot"
        );
    }

    #[test]
    fn duplicate_batch_refreshes_nothing() {
        let mut db = ShardedDepDb::new(4);
        db.ingest([host_record("S1", "cpu-1")]);
        let before = db.snapshot();
        let report = db.ingest([host_record("S1", "cpu-1")]);
        assert_eq!((report.changed, report.ignored), (0, 1));
        assert!(report.touched.is_empty());
        assert_eq!(db.epoch(), 1, "duplicate batch must not bump the epoch");
        let after = db.snapshot();
        for s in 0..db.num_shards() {
            assert!(Arc::ptr_eq(before.shard(s), after.shard(s)));
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingests() {
        let mut db = ShardedDepDb::new(4);
        db.ingest([host_record("S1", "cpu-1")]);
        let snap = db.snapshot();
        let pinned = snap.epochs().clone();
        db.ingest([host_record("S1", "cpu-2"), host_record("S2", "disk-1")]);
        assert_eq!(
            snap.record_count(),
            1,
            "snapshot must not see later ingests"
        );
        assert_eq!(
            snap.epochs(),
            &pinned,
            "snapshot pins the epoch vector it was taken at"
        );
        assert!(db.epochs() != pinned, "the live store moved on");
        assert_eq!(db.record_count(), 3);
    }

    #[test]
    fn sharded_matches_monolithic_semantics() {
        let records = vec![
            rec(r#"<src="S1" dst="Internet" route="tor1,core1"/>"#),
            rec(r#"<src="S2" dst="Internet" route="tor1,core2"/>"#),
            host_record("S1", "cpu-1"),
            rec(r#"<pgm="Riak1" hw="S3" dep="libc6,libsvn1"/>"#),
        ];
        let mono = DepDb::from_records(records.clone());
        let mut sharded = ShardedDepDb::new(8);
        let report = sharded.ingest(records.clone());
        assert_eq!(report.changed, mono.len());
        assert_eq!(sharded.len(), mono.len());
        let snap = sharded.snapshot();
        assert_eq!(DepView::hosts(&snap), DepDb::hosts(&mono));
        for host in mono.hosts() {
            assert_eq!(
                DepView::component_set_of(&snap, &host),
                mono.component_set_of(&host)
            );
            assert_eq!(
                DepView::network_deps(&snap, &host),
                mono.network_deps(&host)
            );
        }
        // Retract parity.
        let r = sharded.retract(&records);
        assert_eq!(r.changed, mono.len());
        assert!(sharded.is_empty());
    }

    #[test]
    fn update_bumps_global_epoch_once() {
        let mut db = ShardedDepDb::new(4);
        let stale = host_record("S1", "cpu-old");
        db.ingest([stale.clone(), host_record("S2", "disk-1")]);
        assert_eq!(db.epoch(), 1);
        let report = db.update(std::slice::from_ref(&stale), [host_record("S1", "cpu-new")]);
        assert_eq!(report.changed, 2);
        assert_eq!(db.epoch(), 2, "one batch = one global bump");
        // Self-update is a net no-op: no bump anywhere.
        let again = host_record("S1", "cpu-new");
        let report = db.update(std::slice::from_ref(&again), [again.clone()]);
        assert_eq!(report.changed, 0);
        assert_eq!(db.epoch(), 2);
    }

    #[test]
    fn from_db_reroutes_and_seeds_epochs() {
        let mono = DepDb::from_records(vec![
            host_record("S1", "cpu-1"),
            host_record("S2", "cpu-2"),
            rec(r#"<src="S1" dst="Internet" route="tor1"/>"#),
        ]);
        let sharded = ShardedDepDb::from_db(mono.clone(), 8);
        assert_eq!(sharded.epoch(), 1, "non-empty seed starts at epoch 1");
        assert_eq!(sharded.len(), mono.len());
        for host in mono.hosts() {
            assert_eq!(
                DepView::component_set_of(&sharded, &host),
                mono.component_set_of(&host)
            );
        }
        assert_eq!(ShardedDepDb::from_db(DepDb::new(), 4).epoch(), 0);
    }

    #[test]
    fn pins_cover_exactly_the_read_shards() {
        let mut db = ShardedDepDb::new(8);
        let (a, b) = split_hosts(8);
        db.ingest([host_record(&a, "cpu-1"), host_record(&b, "cpu-2")]);
        let snap = db.snapshot();
        let pins = snap.pins_for_hosts([a.as_str(), b.as_str(), a.as_str()]);
        let mut expect = vec![(snap.shard_of(&a) as u32, 1), (snap.shard_of(&b) as u32, 1)];
        expect.sort_unstable();
        assert_eq!(pins, expect, "pins are sorted and deduplicated");
    }

    #[test]
    fn single_snapshot_wraps_a_monolithic_db() {
        let db = Arc::new(DepDb::from_records(vec![host_record("S1", "cpu-1")]));
        let snap = DbSnapshot::single(Arc::clone(&db), 3);
        assert_eq!(snap.num_shards(), 1);
        assert_eq!(snap.record_count(), 1);
        assert_eq!(snap.pins_for_hosts(["S1", "S2"]), vec![(0, 3)]);
    }
}
