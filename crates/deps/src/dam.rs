//! Pluggable dependency acquisition modules (DAMs).
//!
//! The paper's prototype wraps NSDMiner (network), `lshw` (hardware) and
//! `apt-rdepends` (software); all three produce records in the Table-1
//! format. This reproduction keeps the pluggable interface
//! ([`DependencyAcquisitionModule`]) and provides [`SimCollector`], a
//! simulated module that serves records from synthetic ground truth with a
//! configurable *miss rate* — NSDMiner-style traffic mining does not see
//! flows that never occur during the observation window, which is why the
//! paper reports identifying "about 90% of relevant dependencies".

use rand::{Rng, SeedableRng};

use crate::record::DependencyRecord;

/// Errors from dependency acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DamError {
    /// The module has no data for the requested host.
    UnknownHost(String),
    /// The underlying collector failed (simulated outage).
    CollectorFailure(String),
}

impl std::fmt::Display for DamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DamError::UnknownHost(h) => write!(f, "no dependency data for host {h:?}"),
            DamError::CollectorFailure(m) => write!(f, "collector failure: {m}"),
        }
    }
}

impl std::error::Error for DamError {}

/// A pluggable dependency acquisition module: collects the dependency
/// records for one target host.
pub trait DependencyAcquisitionModule {
    /// Module name ("nsdminer", "lshw", "apt-rdepends", ...).
    fn name(&self) -> &str;

    /// Collects records for `host`.
    ///
    /// # Errors
    ///
    /// Returns a [`DamError`] when the host is unknown or collection fails.
    fn collect(&mut self, host: &str) -> Result<Vec<DependencyRecord>, DamError>;

    /// All hosts this module can report on.
    fn hosts(&self) -> Vec<String>;
}

/// A simulated collector: ground-truth records filtered through a
/// per-record detection probability.
///
/// With `miss_rate = 0.0` it returns perfect data; with `miss_rate = 0.1`
/// it reproduces the ~90% coverage the paper measured for its
/// NSDMiner-based network module. Sampling is deterministic per
/// `(seed, host, record)` so repeated collections are stable, like a real
/// collector whose observation window is fixed.
pub struct SimCollector {
    name: String,
    truth: Vec<DependencyRecord>,
    miss_rate: f64,
    seed: u64,
}

impl SimCollector {
    /// Wraps `truth` with the given miss rate.
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate` is outside `[0, 1)`.
    pub fn new(
        name: impl Into<String>,
        truth: Vec<DependencyRecord>,
        miss_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&miss_rate),
            "miss_rate must be in [0, 1)"
        );
        SimCollector {
            name: name.into(),
            truth,
            miss_rate,
            seed,
        }
    }

    /// A perfect collector (no misses).
    pub fn perfect(name: impl Into<String>, truth: Vec<DependencyRecord>) -> Self {
        Self::new(name, truth, 0.0, 0)
    }

    /// Stable per-record coin flip.
    fn detects(&self, record: &DependencyRecord) -> bool {
        if self.miss_rate == 0.0 {
            return true;
        }
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        record.hash(&mut h);
        let mut rng = rand::rngs::StdRng::seed_from_u64(h.finish());
        (rng.next_u64() as f64 / u64::MAX as f64) >= self.miss_rate
    }
}

impl DependencyAcquisitionModule for SimCollector {
    fn name(&self) -> &str {
        &self.name
    }

    fn collect(&mut self, host: &str) -> Result<Vec<DependencyRecord>, DamError> {
        let mut out = Vec::new();
        let mut host_known = false;
        for r in &self.truth {
            if r.host() == host {
                host_known = true;
                if self.detects(r) {
                    out.push(r.clone());
                }
            }
        }
        if !host_known {
            return Err(DamError::UnknownHost(host.to_string()));
        }
        Ok(out)
    }

    fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.truth.iter().map(|r| r.host().to_string()).collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }
}

/// Runs every module against every host it knows and gathers all records —
/// the "Step 3" fan-out of the paper's workflow (each worker machine runs
/// its local DAMs in parallel; here the fan-out is sequential but the
/// aggregation semantics are identical).
pub fn collect_all(
    modules: &mut [Box<dyn DependencyAcquisitionModule>],
) -> Result<Vec<DependencyRecord>, DamError> {
    let mut out = Vec::new();
    for m in modules {
        for host in m.hosts() {
            out.extend(m.collect(&host)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_records;

    fn truth() -> Vec<DependencyRecord> {
        parse_records(
            r#"
            <src="S1" dst="Internet" route="ToR1,Core1"/>
            <src="S1" dst="Internet" route="ToR1,Core2"/>
            <src="S2" dst="Internet" route="ToR2,Core1"/>
            <hw="S1" type="CPU" dep="cpu-1"/>
            <pgm="Riak1" hw="S1" dep="libc6"/>
        "#,
        )
        .unwrap()
    }

    #[test]
    fn perfect_collector_returns_everything() {
        let mut c = SimCollector::perfect("nsdminer", truth());
        let got = c.collect("S1").unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(c.collect("S2").unwrap().len(), 1);
    }

    #[test]
    fn unknown_host_is_error() {
        let mut c = SimCollector::perfect("nsdminer", truth());
        assert_eq!(c.collect("S99"), Err(DamError::UnknownHost("S99".into())));
    }

    #[test]
    fn collection_is_deterministic() {
        let mut c1 = SimCollector::new("lossy", truth(), 0.5, 42);
        let mut c2 = SimCollector::new("lossy", truth(), 0.5, 42);
        assert_eq!(c1.collect("S1").unwrap(), c2.collect("S1").unwrap());
    }

    #[test]
    fn miss_rate_drops_roughly_expected_fraction() {
        // Build a large truth set and verify ~10% misses.
        let mut big = Vec::new();
        for i in 0..2000 {
            big.push(DependencyRecord::Network(crate::record::NetworkDep {
                src: "S1".into(),
                dst: "Internet".into(),
                route: vec![format!("dev-{i}")],
            }));
        }
        let mut c = SimCollector::new("lossy", big, 0.1, 7);
        let got = c.collect("S1").unwrap().len();
        assert!(
            (1700..=1900).contains(&got),
            "expected ~1800 of 2000 detected, got {got}"
        );
    }

    #[test]
    fn hosts_enumerated() {
        let c = SimCollector::perfect("x", truth());
        assert_eq!(c.hosts(), vec!["S1".to_string(), "S2".to_string()]);
    }

    #[test]
    fn collect_all_merges_modules() {
        let net: Vec<_> = truth()
            .into_iter()
            .filter(|r| r.kind() == "network")
            .collect();
        let rest: Vec<_> = truth()
            .into_iter()
            .filter(|r| r.kind() != "network")
            .collect();
        let mut modules: Vec<Box<dyn DependencyAcquisitionModule>> = vec![
            Box::new(SimCollector::perfect("nsdminer", net)),
            Box::new(SimCollector::perfect("lshw+apt", rest)),
        ];
        let all = collect_all(&mut modules).unwrap();
        assert_eq!(all.len(), 5);
    }
}
